package core

import (
	"testing"

	"fusedcc/internal/sim"
)

// The chunked phase entry points are the substrate of the pipelined
// execution mode: K compute chunks and K collective chunks must together
// perform exactly the work of the full bulk-synchronous phases, so the
// partitioned graph is bit-exact with eager by construction. These tests
// run every chunk sequentially and diff the outputs against a full-phase
// run on an identical world, including a chunk count that does not
// divide the work evenly.

func TestGEMVChunkedPhasesBitExact(t *testing.T) {
	const m, kdim, tile = 96, 32, 8 // 12 tiles
	run := func(chunks int) []float32 {
		e := sim.NewEngine()
		_, w, pes, gemvs := gemvSetup(e, m, kdim, tile)
		op, err := NewGEMVAllReduce(w, pes, gemvs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		runOp(e, func(p *sim.Proc) Report {
			for c := 0; c < chunks; c++ {
				op.RunComputeChunk(p, c, chunks)
				op.RunAllReduceChunk(p, c, chunks)
			}
			return Report{}
		})
		return append([]float32(nil), op.Out.On(pes[0]).Data()...)
	}
	full := func() []float32 {
		e := sim.NewEngine()
		_, w, pes, gemvs := gemvSetup(e, m, kdim, tile)
		op, err := NewGEMVAllReduce(w, pes, gemvs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		runOp(e, op.RunBaseline)
		return append([]float32(nil), op.Out.On(pes[0]).Data()...)
	}()
	for _, chunks := range []int{2, 5} { // 5 does not divide 12 tiles
		got := run(chunks)
		for i := range full {
			if got[i] != full[i] {
				t.Fatalf("K=%d elem %d: chunked %g != full %g", chunks, i, got[i], full[i])
			}
		}
	}
	// Chunk element ranges must tile the output exactly.
	e := sim.NewEngine()
	_, w, pes, gemvs := gemvSetup(e, m, kdim, tile)
	op, err := NewGEMVAllReduce(w, pes, gemvs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for c := 0; c < 5; c++ {
		lo, hi := op.chunkElems(c, 5)
		if lo != covered {
			t.Fatalf("chunk %d starts at %d, want %d (gap or overlap)", c, lo, covered)
		}
		covered = hi
	}
	if covered != m {
		t.Fatalf("chunks cover %d elems, want %d", covered, m)
	}
}

func TestEmbeddingChunkedPhasesBitExact(t *testing.T) {
	const tables, rows, dim, batch, pooling, slice = 5, 64, 8, 32, 4, 4
	build := func(e *sim.Engine) (*EmbeddingAllToAll, []int) {
		pl, w := newWorld(e, 2, 2)
		pes := pesOf(pl)
		sets := buildEmbedding(pl, pes, tables, rows, dim, batch, pooling)
		op, err := NewEmbeddingAllToAll(w, pes, sets, batch, slice, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return op, pes
	}
	full := func() [][]float32 {
		e := sim.NewEngine()
		op, pes := build(e)
		runOp(e, op.RunBaseline)
		var out [][]float32
		for _, pe := range pes {
			out = append(out, append([]float32(nil), op.Out.On(pe).Data()...))
		}
		return out
	}()
	for _, chunks := range []int{2, 3} { // 3 does not divide 5 tables
		e := sim.NewEngine()
		op, pes := build(e)
		runOp(e, func(p *sim.Proc) Report {
			for c := 0; c < chunks; c++ {
				op.RunPoolingChunk(p, c, chunks)
				op.RunExchangeChunk(p, c, chunks)
			}
			return Report{}
		})
		for i, pe := range pes {
			got := op.Out.On(pe).Data()
			for j := range full[i] {
				if got[j] != full[i][j] {
					t.Fatalf("K=%d pe %d elem %d: chunked %g != full %g", chunks, pe, j, got[j], full[i][j])
				}
			}
		}
	}
}

func TestGEMMChunkedPhasesBitExact(t *testing.T) {
	full := func() [][]float32 {
		e := sim.NewEngine()
		w, pes, gemms := gemmSetup(e, 8, 12, 6, 4, 4, 4) // 2 row tiles per block
		op, err := NewGEMMAllToAll(w, pes, gemms, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		runOp(e, op.RunBaseline)
		var out [][]float32
		for _, pe := range pes {
			out = append(out, append([]float32(nil), op.Recv.On(pe).Data()...))
		}
		return out
	}()
	for _, chunks := range []int{2, 3} { // 3 exceeds the 2 row tiles: some chunks are empty
		e := sim.NewEngine()
		w, pes, gemms := gemmSetup(e, 8, 12, 6, 4, 4, 4)
		op, err := NewGEMMAllToAll(w, pes, gemms, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		runOp(e, func(p *sim.Proc) Report {
			for c := 0; c < chunks; c++ {
				op.RunComputeChunk(p, c, chunks)
				op.RunExchangeChunk(p, c, chunks)
			}
			return Report{}
		})
		for i, pe := range pes {
			got := op.Recv.On(pe).Data()
			for j := range full[i] {
				if got[j] != full[i][j] {
					t.Fatalf("K=%d pe %d elem %d: chunked %g != full %g", chunks, pe, j, got[j], full[i][j])
				}
			}
		}
	}
}

// TestGEMMRaggedTailChunkedBitExact is the regression test for the
// ragged-tail chunking bug: with tokens % TileM != 0 the last row band
// of every destination block is shorter than TileM, and the old
// floor-division MaxChunks/chunkRows silently dropped it. Chunked,
// fused, and eager execution must all produce identical results on such
// a shape.
func TestGEMMRaggedTailChunkedBitExact(t *testing.T) {
	const tokens, n, kdim, tm, tn, ranks = 7, 12, 6, 3, 4, 4 // 7 % 3 != 0
	build := func(e *sim.Engine) (*GEMMAllToAll, []int) {
		w, pes, gemms := gemmSetup(e, tokens, n, kdim, tm, tn, ranks)
		op, err := NewGEMMAllToAll(w, pes, gemms, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return op, pes
	}
	full := func() [][]float32 {
		e := sim.NewEngine()
		op, pes := build(e)
		runOp(e, op.RunBaseline)
		var out [][]float32
		for _, pe := range pes {
			out = append(out, append([]float32(nil), op.Recv.On(pe).Data()...))
		}
		return out
	}()
	// Every chunked row band must cover each block's rows exactly once,
	// ragged tail included.
	{
		e := sim.NewEngine()
		op, _ := build(e)
		if op.MaxChunks() != 3 { // ceil(7/3)
			t.Fatalf("MaxChunks = %d, want 3", op.MaxChunks())
		}
		covered := 0
		for c := 0; c < op.MaxChunks(); c++ {
			r0, r1 := op.chunkRows(c, op.MaxChunks())
			if r0 != covered {
				t.Fatalf("chunk %d starts at row %d, want %d (gap or overlap)", c, r0, covered)
			}
			covered = r1
		}
		if covered != tokens {
			t.Fatalf("chunks cover %d rows, want %d (ragged tail dropped)", covered, tokens)
		}
	}
	for _, chunks := range []int{2, 3} {
		e := sim.NewEngine()
		op, pes := build(e)
		runOp(e, func(p *sim.Proc) Report {
			for c := 0; c < chunks; c++ {
				op.RunComputeChunk(p, c, chunks)
				op.RunExchangeChunk(p, c, chunks)
			}
			return Report{}
		})
		for i, pe := range pes {
			got := op.Recv.On(pe).Data()
			for j := range full[i] {
				if got[j] != full[i][j] {
					t.Fatalf("K=%d pe %d elem %d: chunked %g != full %g", chunks, pe, j, got[j], full[i][j])
				}
			}
		}
	}
	// The fused path re-tiles per block too, so it stays bit-exact on the
	// same ragged shape.
	e := sim.NewEngine()
	op, pes := build(e)
	runOp(e, op.RunFused)
	for i, pe := range pes {
		got := op.Recv.On(pe).Data()
		for j := range full[i] {
			if got[j] != full[i][j] {
				t.Fatalf("fused pe %d elem %d: %g != baseline %g", pe, j, got[j], full[i][j])
			}
		}
	}
}

// TestMaxChunksFloorsAtOne covers the degenerate-granularity guard:
// every pair operator's MaxChunks must floor at 1, including the GEMM
// with fewer tokens per rank than TileM (the shape that used to clamp
// the effective chunk count to zero).
func TestMaxChunksFloorsAtOne(t *testing.T) {
	cases := []struct {
		name string
		got  func(t *testing.T) int
	}{
		{"gemm tokens<TileM", func(t *testing.T) int {
			e := sim.NewEngine()
			w, pes, gemms := gemmSetup(e, 2, 8, 4, 4, 4, 4) // 2 tokens, TileM 4
			op, err := NewGEMMAllToAll(w, pes, gemms, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			return op.MaxChunks()
		}},
		{"gemv single tile", func(t *testing.T) int {
			e := sim.NewEngine()
			_, w, pes, gemvs := gemvSetup(e, 8, 16, 8) // 1 output tile
			op, err := NewGEMVAllReduce(w, pes, gemvs, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			return op.MaxChunks()
		}},
		{"embedding single table", func(t *testing.T) int {
			e := sim.NewEngine()
			pl, w := newWorld(e, 1, 2)
			pes := pesOf(pl)
			sets := buildEmbedding(pl, pes, 1, 64, 8, 32, 4)
			op, err := NewEmbeddingAllToAll(w, pes, sets, 32, 4, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			return op.MaxChunks()
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.got(t); got < 1 {
				t.Fatalf("MaxChunks = %d, want >= 1", got)
			}
		})
	}
	// The degenerate GEMM must also execute: one chunk covering the
	// whole (sub-TileM) block.
	e := sim.NewEngine()
	w, pes, gemms := gemmSetup(e, 2, 8, 4, 4, 4, 4)
	op, err := NewGEMMAllToAll(w, pes, gemms, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r0, r1 := op.chunkRows(0, op.MaxChunks()); r0 != 0 || r1 != 2 {
		t.Fatalf("degenerate chunk rows [%d,%d), want [0,2)", r0, r1)
	}
	runOp(e, func(p *sim.Proc) Report {
		op.RunComputeChunk(p, 0, 1)
		op.RunExchangeChunk(p, 0, 1)
		return Report{}
	})
}

func TestMaxChunksGranularity(t *testing.T) {
	e := sim.NewEngine()
	_, w, pes, gemvs := gemvSetup(e, 96, 32, 8)
	gv, err := NewGEMVAllReduce(w, pes, gemvs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if gv.MaxChunks() != 12 {
		t.Errorf("GEMV MaxChunks = %d, want 12 tiles", gv.MaxChunks())
	}
	w2, pes2, gemms := gemmSetup(sim.NewEngine(), 8, 12, 6, 4, 4, 4)
	gm, err := NewGEMMAllToAll(w2, pes2, gemms, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if gm.MaxChunks() != 2 {
		t.Errorf("GEMM MaxChunks = %d, want 2 row tiles per block", gm.MaxChunks())
	}
}
