package core

import (
	"fmt"

	"fusedcc/internal/collectives"
	"fusedcc/internal/gpu"
	"fusedcc/internal/shmem"
	"fusedcc/internal/sim"
)

// EmbeddingGradExchange is the backward counterpart of the fused
// embedding + All-to-All: pooled-output gradients, laid out {L, k*T*D}
// on each rank (the forward output layout), travel back to their table
// owners, which scatter-add them into the embedding tables. The paper's
// Fig 15 overlaps this backward All-to-All with the embedding gradient
// apply exactly as the forward pass overlaps pooling with the forward
// All-to-All.
//
// Fused execution is one persistent kernel per rank: send-side logical
// WGs read gradient slices from GradOut and put them to the owning rank
// (communication-aware: remote owners first, filling the wire early);
// apply-side logical WGs wait on per-slice arrival flags and
// scatter-add each slice into the local tables the moment it lands.
// Baseline: an RCCL-style All-to-All of all gradients followed by a
// separate scatter-add kernel.
type EmbeddingGradExchange struct {
	// Fwd is the forward operator this exchange mirrors: shapes,
	// tables, slice geometry and PEs are shared.
	Fwd *EmbeddingAllToAll
	// GradOut holds each rank's {L, k*T*D} output gradients.
	GradOut *shmem.Symm
	// GradIn receives, on each rank, the gradients for its own tables
	// over the global batch. Fused layout: [T][B][D] table-major.
	// Baseline layout: [src][T][L][D] blocks (the collective's natural
	// shape) — same values, permuted; see GradInAt.
	GradIn *shmem.Symm
	// RowsPerWG coarsens the simulation like the forward op.
	RowsPerWG int
}

// NewEmbeddingGradExchange builds the backward exchange for a forward
// operator, allocating the gradient buffers.
func NewEmbeddingGradExchange(fwd *EmbeddingAllToAll) *EmbeddingGradExchange {
	return &EmbeddingGradExchange{
		Fwd:       fwd,
		GradOut:   fwd.World.Malloc(fwd.L * fwd.rowStride),
		GradIn:    fwd.World.Malloc(fwd.T * fwd.GlobalBatch * fwd.D),
		RowsPerWG: fwd.RowsPerWG,
	}
}

// GradInAt returns the element offset of gradient row (t, b) on the
// owner, under either layout.
func (g *EmbeddingGradExchange) GradInAt(fused bool, t, b int) int {
	op := g.Fwd
	if fused {
		return (t*op.GlobalBatch + b) * op.D
	}
	src := b / op.L
	return src*(op.T*op.L*op.D) + t*op.L*op.D + (b-src*op.L)*op.D
}

// gradSliceCount returns the incoming slice count per rank: all of its
// tables over the global batch.
func (g *EmbeddingGradExchange) gradSliceCount() int {
	return g.Fwd.T * g.Fwd.GlobalBatch / g.Fwd.SliceRows
}

// applyRowsCost charges the scatter-add of n pooled-gradient rows of
// table t on the WG: read the gradient rows, then read-modify-write the
// touched table rows (gather-pattern traffic on both sides).
func (g *EmbeddingGradExchange) applyRowsCost(wg *gpu.WG, rank, t, n int) {
	op := g.Fwd
	pool := op.Sets[rank].Bags[t].AvgPooling
	if pool <= 0 {
		pool = 1
	}
	dim := float64(op.D)
	wg.Read(float64(n) * dim * 4)
	wg.Gather(float64(n) * pool * dim * 4)
	wg.Write(float64(n) * pool * dim * 4)
}

// RunFused executes the overlapped backward exchange.
func (g *EmbeddingGradExchange) RunFused(p *sim.Proc) Report {
	op := g.Fwd
	w := op.World
	pl := w.Platform()
	e := pl.E
	rep := Report{Start: e.Now(), PEEnd: make([]sim.Time, op.k)}

	rowsPerWG := g.RowsPerWG
	if rowsPerWG <= 0 {
		rowsPerWG = 1
	}
	if op.SliceRows%rowsPerWG != 0 {
		panic("core: RowsPerWG must divide SliceRows")
	}
	// arrived[owner]: one flag per incoming gradient slice, set when
	// its block is visible at the owner.
	arrived := w.MallocFlags(g.gradSliceCount())
	lSlices := op.L / op.SliceRows

	wgAll := sim.NewWaitGroup(e)
	wgAll.Add(op.k)
	for s := 0; s < op.k; s++ {
		s := s
		e.Go(fmt.Sprintf("fused.embgrad/rank%d", s), func(rp *sim.Proc) {
			g.runRank(rp, s, arrived, rowsPerWG, lSlices, &rep)
			rep.PEEnd[s] = rp.Now()
			wgAll.Done()
		})
	}
	wgAll.Wait(p)
	rep.End = e.Now()
	return rep
}

func (g *EmbeddingGradExchange) runRank(rp *sim.Proc, s int, arrived *shmem.Flags, rowsPerWG, lSlices int, rep *Report) {
	op := g.Fwd
	w := op.World
	pe := op.PEs[s]
	dev := w.Platform().Device(pe)

	// Send items: for each owner rank o and each of o's tables, my L
	// local gradient rows form lSlices slices. Comm-aware order:
	// remote owners first, self last.
	type sendItem struct{ owner, t, slice int }
	var sends []sendItem
	for off := 1; off <= op.k; off++ {
		o := (s + off) % op.k
		for t := 0; t < op.T; t++ {
			for sl := 0; sl < lSlices; sl++ {
				sends = append(sends, sendItem{o, t, sl})
			}
		}
	}
	applies := g.gradSliceCount()
	slicesPerTable := op.GlobalBatch / op.SliceRows

	phys := dev.Config().CUs * op.Config.fusedWGsPerCU(dev) / rowsPerWG
	if phys < 1 {
		phys = 1
	}
	if total := len(sends) + applies; phys > total {
		phys = total
	}

	dev.Launch(rp, gpu.Kernel{
		Name:     fmt.Sprintf("fused.embgrad.%d", s),
		PhysWGs:  phys,
		WGsPerCU: op.Config.fusedWGsPerCU(dev),
		Lanes:    rowsPerWG,
		Body: func(wg *gpu.WG) {
			// Phase 1: stream gradient slices out. Each slice is a
			// strided read from GradOut and one non-blocking put (or a
			// local copy for this rank's own tables).
			for idx := wg.PhysID; idx < len(sends); idx += phys {
				it := sends[idx]
				gt := it.owner*op.T + it.t
				rows := op.SliceRows
				b0 := s*op.L + it.slice*op.SliceRows // global batch row
				srcOff := it.slice*op.SliceRows*op.rowStride + gt*op.D
				fi := it.t*slicesPerTable + b0/op.SliceRows
				wg.Read(float64(rows*op.D) * 4)
				wg.Busy(op.Config.Bookkeeping)
				if it.owner == s {
					wg.Write(float64(rows*op.D) * 4)
					dbuf := g.GradIn.On(pe)
					for r := 0; r < rows; r++ {
						dbuf.CopyWithin(g.GradInAt(true, it.t, b0+r), g.GradOut.On(pe), srcOff+r*op.rowStride, op.D)
					}
					w.StoreRemoteFlag(wg, pe, arrived, fi, 1)
					continue
				}
				dstPE := op.PEs[it.owner]
				w.PutNbiRows(wg, dstPE, g.GradIn,
					g.GradInAt(true, it.t, b0), op.D,
					g.GradOut.On(pe), srcOff, op.rowStride,
					rows, op.D)
				w.Fence(wg)
				w.PutFlagNbi(wg, dstPE, arrived, fi, 1)
				rep.RemotePuts++
				rep.RemoteBytes += float64(rows*op.D) * 4
			}
			// Phase 2: scatter-add incoming slices. Each persistent WG
			// owns a strided subset; a slice is applied the moment its
			// arrival flag is raised, so early arrivals (the local
			// contribution, then near sources) overlap the still
			// in-flight remote gradients.
			for i := wg.PhysID; i < applies; i += phys {
				arrived.WaitGE(wg, i, 1)
				g.applyRowsCost(wg, s, i/slicesPerTable, op.SliceRows)
				wg.Busy(op.Config.Bookkeeping)
			}
		},
	})
}

// RunBaseline executes the bulk-synchronous backward: gradient
// All-to-All, then a scatter-add kernel per rank.
func (g *EmbeddingGradExchange) RunBaseline(p *sim.Proc) Report {
	op := g.Fwd
	pl := op.World.Platform()
	e := pl.E
	rep := Report{Start: e.Now(), PEEnd: make([]sim.Time, op.k)}
	rowsPerWG := g.RowsPerWG
	if rowsPerWG <= 0 {
		rowsPerWG = 1
	}

	// Pack: the {L, k*T*D} gradient layout interleaves owners, but the
	// library All-to-All needs contiguous per-destination blocks — a
	// full read+write pass the fused path's strided puts avoid.
	cnt := op.T * op.L * op.D
	packed := op.World.Malloc(op.k * cnt)
	wgPack := sim.NewWaitGroup(e)
	wgPack.Add(op.k)
	for s := 0; s < op.k; s++ {
		s := s
		pe := op.PEs[s]
		dev := pl.Device(pe)
		e.Go(fmt.Sprintf("base.embgrad.pack/rank%d", s), func(rp *sim.Proc) {
			src := g.GradOut.On(pe)
			dst := packed.On(pe)
			grid := op.k * op.T
			dev.LaunchGrid(rp, "grad.pack", grid, 0, func(wg *gpu.WG, l int) {
				d, t := l/op.T, l%op.T
				blockBytes := float64(op.L*op.D) * 4
				wg.Read(blockBytes)
				wg.Write(blockBytes)
				if dst.Functional() {
					for lr := 0; lr < op.L; lr++ {
						dst.CopyWithin(d*cnt+t*op.L*op.D+lr*op.D, src, lr*op.rowStride+(d*op.T+t)*op.D, op.D)
					}
				}
			})
			wgPack.Done()
		})
	}
	wgPack.Wait(p)

	// Exchange: each rank sends its packed T*L*D block per owner.
	comm := collectives.New(pl, op.PEs)
	comm.AllToAll(p, packed, g.GradIn, cnt, op.Config.Collective)

	// Scatter-add kernel per rank over all its tables' gradient rows.
	wgAll := sim.NewWaitGroup(e)
	wgAll.Add(op.k)
	for s := 0; s < op.k; s++ {
		s := s
		pe := op.PEs[s]
		dev := pl.Device(pe)
		e.Go(fmt.Sprintf("base.embgrad/rank%d", s), func(rp *sim.Proc) {
			rows := op.T * op.GlobalBatch
			grid := (rows + rowsPerWG - 1) / rowsPerWG
			dev.LaunchGridLanes(rp, "emb.scatteradd", grid, 0, rowsPerWG, func(wg *gpu.WG, l int) {
				item := l * rowsPerWG
				n := rowsPerWG
				if item+n > rows {
					n = rows - item
				}
				g.applyRowsCost(wg, s, item/op.GlobalBatch, n)
			})
			rep.PEEnd[s] = rp.Now()
			wgAll.Done()
		})
	}
	wgAll.Wait(p)
	rep.End = e.Now()
	return rep
}
