package core

import (
	"fmt"

	"fusedcc/internal/collectives"
	"fusedcc/internal/gpu"
	"fusedcc/internal/kernels"
	"fusedcc/internal/shmem"
	"fusedcc/internal/sim"
	"fusedcc/internal/trace"
)

// EmbeddingAllToAll is the fused embedding-pooling + All-to-All operator
// (§III-A, Fig 6). Each of k ranks owns T embedding tables and pools
// them over the global batch B; the pooled rows are exchanged so that
// every rank ends up with its local batch shard L = B/k of every table,
// laid out {L, k*T*D} — exactly what DLRM's interaction operator
// consumes, with no shuffle kernel.
//
// The fused execution is one persistent kernel per rank: logical WGs
// (one per SliceRows/RowsPerWG fraction of a slice) pool rows; the last
// WG to finish a slice — detected through the per-slice WG_Done bitmask
// — communicates it. Cross-node slices travel as one non-blocking put
// followed by an ordered sliceRdy flag; same-node slices are written
// with zero-copy stores directly into the destination layout and only
// the flag is sent. Communication-aware scheduling orders remote slices
// first.
type EmbeddingAllToAll struct {
	World       *shmem.World
	PEs         []int
	Sets        []*kernels.EmbeddingSet
	GlobalBatch int
	// SliceRows is the communication granularity: pooled rows per slice.
	SliceRows int
	// RowsPerWG is the pooled rows one logical WG computes (the paper's
	// kernels use 1; benchmarks coarsen it to bound simulation cost —
	// timing is unchanged because the cost model is linear in rows).
	RowsPerWG int
	Config    Config

	// Out is the operator output, {L, k*T*D} row-major per PE.
	Out *shmem.Symm

	k, T, D, L int
	send       *shmem.Symm
	recv       *shmem.Symm // lazy: baseline receive staging
	rowStride  int
}

// NewEmbeddingAllToAll validates shapes and allocates the output and
// staging symmetric buffers.
func NewEmbeddingAllToAll(w *shmem.World, pes []int, sets []*kernels.EmbeddingSet, globalBatch, sliceRows int, cfg Config) (*EmbeddingAllToAll, error) {
	op := &EmbeddingAllToAll{
		World: w, PEs: pes, Sets: sets,
		GlobalBatch: globalBatch, SliceRows: sliceRows, RowsPerWG: 1, Config: cfg,
	}
	op.k = len(pes)
	if op.k == 0 || len(sets) != op.k {
		return nil, fmt.Errorf("core: %d PEs with %d embedding sets", op.k, len(sets))
	}
	for s, set := range sets {
		if err := set.Validate(); err != nil {
			return nil, fmt.Errorf("core: rank %d: %w", s, err)
		}
		if set.Batch() != globalBatch {
			return nil, fmt.Errorf("core: rank %d batch %d != global %d", s, set.Batch(), globalBatch)
		}
		if set.Tables() != sets[0].Tables() || set.Dim() != sets[0].Dim() {
			return nil, fmt.Errorf("core: rank %d table shape differs", s)
		}
	}
	op.T, op.D = sets[0].Tables(), sets[0].Dim()
	if globalBatch%op.k != 0 {
		return nil, fmt.Errorf("core: global batch %d not divisible by %d ranks", globalBatch, op.k)
	}
	op.L = globalBatch / op.k
	if sliceRows <= 0 || op.L%sliceRows != 0 {
		return nil, fmt.Errorf("core: slice rows %d must divide local batch %d", sliceRows, op.L)
	}
	op.rowStride = op.k * op.T * op.D
	op.Out = w.Malloc(op.L * op.rowStride)
	op.send = w.Malloc(op.T * globalBatch * op.D)
	return op, nil
}

// slicesPerTable returns B/S, the slice count per table per rank.
func (op *EmbeddingAllToAll) slicesPerTable() int { return op.GlobalBatch / op.SliceRows }

// numSlices returns the per-rank slice count.
func (op *EmbeddingAllToAll) numSlices() int { return op.T * op.slicesPerTable() }

// flagsPerPE returns the sliceRdy flag count per PE: one per incoming
// (and locally produced) slice.
func (op *EmbeddingAllToAll) flagsPerPE() int { return op.k * op.T * (op.L / op.SliceRows) }

// sliceDst returns the destination rank of slice sl (slices are S
// consecutive batch rows, so destination is constant within a slice).
func (op *EmbeddingAllToAll) sliceDst(sl int) int {
	batchSlice := sl % op.slicesPerTable()
	return batchSlice * op.SliceRows / op.L
}

// sliceTable returns the local table index of slice sl.
func (op *EmbeddingAllToAll) sliceTable(sl int) int { return sl / op.slicesPerTable() }

// sliceBatch returns the first global batch row of slice sl.
func (op *EmbeddingAllToAll) sliceBatch(sl int) int {
	return (sl % op.slicesPerTable()) * op.SliceRows
}

// flagIndex returns the sliceRdy index at the destination for a slice
// produced by rank src, table t, landing rows [b0, b0+S) of the
// destination's local batch.
func (op *EmbeddingAllToAll) flagIndex(src, t, b0, dst int) int {
	localSlice := (b0 - dst*op.L) / op.SliceRows
	return (src*op.T+t)*(op.L/op.SliceRows) + localSlice
}

// scheduleSlices returns the slice execution order for rank s.
func (op *EmbeddingAllToAll) scheduleSlices(s int) []int {
	order := make([]int, 0, op.numSlices())
	if op.Config.Schedule == Oblivious {
		return op.obliviousOrder()
	}
	// Comm-aware: destinations by descending link cost (cross-node NIC
	// slices first, then fabric peers, self last); table-major within
	// each destination.
	for _, d := range commAwareDestOrder(op.World.Platform(), op.PEs, s) {
		for sl := 0; sl < op.numSlices(); sl++ {
			if op.sliceDst(sl) == d {
				order = append(order, sl)
			}
		}
	}
	return order
}

// obliviousOrder mirrors the hardware dispatcher's WG(0,0,0)-first
// enumeration in the paper's kernels (Fig 6): batch-slice major, tables
// fastest — so a rank whose first batch shard is its own computes every
// local slice before any remote one.
func (op *EmbeddingAllToAll) obliviousOrder() []int {
	order := make([]int, 0, op.numSlices())
	for bs := 0; bs < op.slicesPerTable(); bs++ {
		for t := 0; t < op.T; t++ {
			order = append(order, t*op.slicesPerTable()+bs)
		}
	}
	return order
}

// dstOffset returns the element offset in Out on the destination for
// (global table gt, destination-local row lr).
func (op *EmbeddingAllToAll) dstOffset(gt, lr int) int {
	return lr*op.rowStride + gt*op.D
}

// RunFused executes the fused operator: one persistent kernel per rank,
// all ranks concurrent. It blocks the coordinator until every rank's
// kernel (including its sliceRdy tail wait) retires, and returns the
// run report.
func (op *EmbeddingAllToAll) RunFused(p *sim.Proc) Report {
	w := op.World
	pl := w.Platform()
	e := pl.E
	rep := Report{Start: e.Now(), PEEnd: make([]sim.Time, op.k)}
	sliceRdy := w.MallocFlags(op.flagsPerPE())
	rowsPerWG := op.RowsPerWG
	if rowsPerWG <= 0 {
		rowsPerWG = 1
	}
	if op.SliceRows%rowsPerWG != 0 {
		panic(fmt.Sprintf("core: RowsPerWG %d must divide SliceRows %d", rowsPerWG, op.SliceRows))
	}
	itemsPerSlice := op.SliceRows / rowsPerWG

	// Simulated persistent-WG count (lane-coarsened), identical on all
	// ranks: devices share one configuration.
	dev0 := pl.Device(op.PEs[0])
	phys := dev0.Config().CUs * op.Config.fusedWGsPerCU(dev0) / rowsPerWG
	if phys < 1 {
		phys = 1
	}
	if t := op.numSlices() * itemsPerSlice; phys > t {
		phys = t
	}
	// storeDone[dst][src*phys+w]: same-node source WG w finished (and
	// fenced) all its zero-copy stores into dst.
	storeDone := w.MallocFlags(op.k * phys)

	wgAll := sim.NewWaitGroup(e)
	wgAll.Add(op.k)
	for s := 0; s < op.k; s++ {
		s := s
		pe := op.PEs[s]
		dev := pl.Device(pe)
		e.Go(fmt.Sprintf("fused.emb/rank%d", s), func(rp *sim.Proc) {
			op.runRank(rp, s, dev, sliceRdy, storeDone, itemsPerSlice, rowsPerWG, phys, &rep)
			rep.PEEnd[s] = rp.Now()
			wgAll.Done()
		})
	}
	wgAll.Wait(p)
	rep.End = e.Now()
	return rep
}

// runRank launches rank s's persistent kernel and blocks until it ends.
//
// Synchronization follows the paper: cross-node slices are published
// with a put + fence + sliceRdy flag at slice granularity (§III-A);
// same-node destinations receive thread-granular zero-copy stores, and
// each physical WG raises one fenced storeDone flag per peer after its
// last store there (§III-B's "one ready flag per peer GPU"), avoiding a
// fence per slice.
func (op *EmbeddingAllToAll) runRank(rp *sim.Proc, s int, dev *gpu.Device, sliceRdy, storeDone *shmem.Flags, itemsPerSlice, rowsPerWG, phys int, rep *Report) {
	w := op.World
	slices := op.scheduleSlices(s)
	trackers := make([]*Bitmask, op.numSlices())
	for i := range trackers {
		trackers[i] = NewBitmask(itemsPerSlice)
	}
	totalItems := len(slices) * itemsPerSlice
	functional := op.Out.On(op.PEs[s]).Functional()
	tl := op.Config.Timeline
	tracePE := tl.Enabled() && s == 0
	crossNodeTo := func(d int) bool {
		return !w.Platform().SameNode(op.PEs[s], op.PEs[d]) ||
			(op.Config.DisableZeroCopy && d != s)
	}
	lSlices := op.L / op.SliceRows

	dev.Launch(rp, gpu.Kernel{
		Name:     fmt.Sprintf("fused.emb.%d", s),
		PhysWGs:  phys,
		WGsPerCU: op.Config.fusedWGsPerCU(dev),
		Lanes:    rowsPerWG,
		Body: func(wg *gpu.WG) {
			var scratch []float32
			if functional {
				scratch = make([]float32, rowsPerWG*op.D)
			}
			// Outstanding same-node items per destination, for the
			// one-flag-per-peer protocol.
			remaining := make([]int, op.k)
			for idx := wg.PhysID; idx < totalItems; idx += phys {
				d := op.sliceDst(slices[idx/itemsPerSlice])
				if !crossNodeTo(d) {
					remaining[d]++
				}
			}
			raise := func(d int) {
				w.StoreRemoteFlag(wg, op.PEs[d], storeDone, s*phys+wg.PhysID, 1)
			}
			for d := 0; d < op.k; d++ {
				if !crossNodeTo(d) && remaining[d] == 0 {
					raise(d)
				}
			}
			for idx := wg.PhysID; idx < totalItems; idx += phys {
				sl := slices[idx/itemsPerSlice]
				within := idx % itemsPerSlice
				t := op.sliceTable(sl)
				b0 := op.sliceBatch(sl) + within*rowsPerWG
				d := op.sliceDst(sl)
				dstPE := op.PEs[d]
				gt := s*op.T + t
				bag := op.Sets[s].Bags[t]
				start := wg.P.Now()
				crossNode := crossNodeTo(d)
				if crossNode {
					// Pool into the staging buffer; the slice travels
					// later as one put.
					bag.ComputeRows(wg, b0, rowsPerWG, op.send.On(op.PEs[s]), (t*op.GlobalBatch+b0)*op.D)
				} else {
					// Zero-copy: pool in registers, store directly
					// into the destination layout (local rows are
					// plain stores into our own Out).
					bag.GatherRows(wg, b0, rowsPerWG, scratch)
					w.StoreValuesRows(wg, dstPE, op.Out, op.dstOffset(gt, b0-d*op.L), op.rowStride, scratch, rowsPerWG, op.D)
				}
				if tracePE {
					tl.Add(wg.PhysID, trace.Compute, start, wg.P.Now(), fmt.Sprintf("slice%d", sl))
				}
				wg.Busy(op.Config.Bookkeeping)
				last := trackers[sl].Set(within)
				if crossNode {
					if last {
						// Last finisher communicates the slice.
						fi := op.flagIndex(s, t, op.sliceBatch(sl), d)
						sb := op.sliceBatch(sl)
						w.PutNbiRows(wg, dstPE, op.Out,
							op.dstOffset(gt, sb-d*op.L), op.rowStride,
							op.send.On(op.PEs[s]), (t*op.GlobalBatch+sb)*op.D, op.D,
							op.SliceRows, op.D)
						w.Fence(wg)
						w.PutFlagNbi(wg, dstPE, sliceRdy, fi, 1)
						rep.RemotePuts++
						rep.RemoteBytes += float64(op.SliceRows*op.D) * 4
						if tracePE {
							tl.Add(wg.PhysID, trace.PutIssue, wg.P.Now(), wg.P.Now(), fmt.Sprintf("slice%d->%d", sl, d))
						}
					}
				} else {
					if d != s {
						rep.RemotePuts++
						rep.RemoteBytes += float64(rowsPerWG*op.D) * 4
					}
					if tracePE && last && d == s {
						tl.Add(wg.PhysID, trace.LocalDone, wg.P.Now(), wg.P.Now(), fmt.Sprintf("slice%d", sl))
					}
					remaining[d]--
					if remaining[d] == 0 {
						raise(d) // fences this WG's stores to d, then flags
					}
				}
			}
			// Tail: the kernel retires only when every slice of the
			// output is ready. Cross-node producers are tracked by
			// sliceRdy flags (slice granularity), same-node producers by
			// their per-WG storeDone flags; each persistent WG polls a
			// distinct subset of both.
			waitStart := wg.P.Now()
			for src := 0; src < op.k; src++ {
				if !w.Platform().SameNode(op.PEs[src], op.PEs[s]) ||
					(op.Config.DisableZeroCopy && src != s) {
					base := src * op.T * lSlices
					for f := wg.PhysID; f < op.T*lSlices; f += phys {
						sliceRdy.WaitGE(wg, base+f, 1)
					}
				} else {
					for f := wg.PhysID; f < phys; f += phys {
						storeDone.WaitGE(wg, src*phys+f, 1)
					}
				}
			}
			if tracePE && wg.P.Now() > waitStart {
				tl.Add(wg.PhysID, trace.WaitSpan, waitStart, wg.P.Now(), "sliceRdy")
			}
		},
	})
}

// RunKernelSplit executes the decomposition alternative of Wang et
// al. [58] that the paper argues against (§IV-A, §V): the batch is cut
// into shards, each shard runs as its own embedding kernel, and shard
// i's All-to-All overlaps shard i+1's compute on a second stream. Every
// shard pays kernel-launch overhead and the smaller grids underutilize
// the device — the "16384 additional kernel launches" cost the fused
// persistent kernel avoids.
func (op *EmbeddingAllToAll) RunKernelSplit(p *sim.Proc, shards int) Report {
	w := op.World
	pl := w.Platform()
	e := pl.E
	rep := Report{Start: e.Now(), PEEnd: make([]sim.Time, op.k)}
	if shards < 1 || op.L%shards != 0 {
		panic(fmt.Sprintf("core: %d shards must divide local batch %d", shards, op.L))
	}
	rowsPerWG := op.RowsPerWG
	if rowsPerWG <= 0 {
		rowsPerWG = 1
	}
	cnt := op.T * op.L * op.D
	recv := w.Malloc(op.k * cnt)
	shardBatch := op.GlobalBatch / shards
	comm := collectives.New(pl, op.PEs)

	// computeShard runs one embedding kernel per rank covering all
	// tables for the shard's batch rows, writing the bucketized layout.
	computeShard := func(cp *sim.Proc, sh int) {
		wg := sim.NewWaitGroup(e)
		wg.Add(op.k)
		for s := 0; s < op.k; s++ {
			s := s
			pe := op.PEs[s]
			dev := pl.Device(pe)
			e.Go(fmt.Sprintf("split.emb/rank%d", s), func(rp *sim.Proc) {
				sendBuf := op.send.On(pe)
				rows := op.T * shardBatch
				lanes := rowsPerWG
				if shardBatch%lanes != 0 {
					lanes = 1 // keep groups within one table/destination
				}
				grid := (rows + lanes - 1) / lanes
				dev.LaunchGridLanes(rp, "emb.shard", grid, 0, lanes, func(wgc *gpu.WG, l int) {
					item := l * lanes
					t := item / shardBatch
					b0 := sh*shardBatch + item%shardBatch
					d := b0 / op.L
					off := d*cnt + t*op.L*op.D + (b0-d*op.L)*op.D
					op.Sets[s].Bags[t].ComputeRows(wgc, b0, lanes, sendBuf, off)
				})
				wg.Done()
			})
		}
		wg.Wait(cp)
	}

	// Pipeline: compute stream runs shards back to back; the comm
	// stream issues shard i's exchange while shard i+1 computes.
	ready := sim.NewFlag(e)
	commDone := sim.NewFlag(e)
	e.Go("split.comm", func(cp *sim.Proc) {
		for sh := 0; sh < shards; sh++ {
			ready.WaitGE(cp, int64(sh+1))
			comm.AllToAll(cp, op.send, recv, cnt/shards, op.Config.Collective)
		}
		commDone.Set(1)
	})
	for sh := 0; sh < shards; sh++ {
		computeShard(p, sh)
		ready.Add(1)
	}
	commDone.WaitGE(p, 1)
	rep.End = e.Now()
	for s := range rep.PEEnd {
		rep.PEEnd[s] = rep.End
	}
	return rep
}

// recvBuf lazily allocates the baseline receive staging buffer.
func (op *EmbeddingAllToAll) recvBuf() *shmem.Symm {
	if op.recv == nil {
		op.recv = op.World.Malloc(op.k * op.T * op.L * op.D)
	}
	return op.recv
}

// MaxChunks returns the finest pipelining granularity the operator
// supports: one table per chunk (tables are the contiguous unit of the
// bucketized send layout), never less than 1.
func (op *EmbeddingAllToAll) MaxChunks() int {
	if op.T < 1 {
		return 1
	}
	return op.T
}

// chunkTables returns the table range [t0,t1) of chunk c of n.
func (op *EmbeddingAllToAll) chunkTables(c, n int) (t0, t1 int) {
	return chunkRange(c, n, op.T)
}

// RunPooling executes only the compute half of the bulk-synchronous
// path: per-table embedding kernels on every rank concurrently, writing
// the bucketized send buffer. This is the eager-mode body of a graph
// EmbeddingBag node.
func (op *EmbeddingAllToAll) RunPooling(p *sim.Proc) Report {
	return op.RunPoolingChunk(p, 0, 1)
}

// RunPoolingChunk executes chunk c of n of the compute half: the pooling
// kernels of this chunk's table range only. The n chunks together pool
// every table exactly once into the same bucketized staging, so chunked
// execution stays bit-exact with eager. This is the body of a
// partitioned (pipelined) graph EmbeddingBag sub-node.
func (op *EmbeddingAllToAll) RunPoolingChunk(p *sim.Proc, c, n int) Report {
	pl := op.World.Platform()
	e := pl.E
	t0, t1 := op.chunkTables(c, n)
	if t1 <= t0 {
		return emptyChunkReport(e.Now(), op.k)
	}
	rep := Report{Start: e.Now(), PEEnd: make([]sim.Time, op.k)}
	cnt := op.T * op.L * op.D
	rowsPerWG := op.RowsPerWG
	if rowsPerWG <= 0 {
		rowsPerWG = 1
	}
	wgAll := sim.NewWaitGroup(e)
	wgAll.Add(op.k)
	for s := 0; s < op.k; s++ {
		s := s
		pe := op.PEs[s]
		dev := pl.Device(pe)
		e.Go(fmt.Sprintf("base.emb/rank%d", s), func(rp *sim.Proc) {
			sendBuf := op.send.On(pe)
			for t := t0; t < t1; t++ {
				t := t
				bag := op.Sets[s].Bags[t]
				grid := (op.GlobalBatch + rowsPerWG - 1) / rowsPerWG
				dev.LaunchGridLanes(rp, "embeddingbag", grid, 0, rowsPerWG, func(wg *gpu.WG, l int) {
					b0 := l * rowsPerWG
					n := rowsPerWG
					if b0+n > op.GlobalBatch {
						n = op.GlobalBatch - b0
					}
					// Row groups never straddle a destination because
					// RowsPerWG divides SliceRows divides the local
					// batch, so the bucketized rows are contiguous.
					d := b0 / op.L
					off := d*cnt + t*op.L*op.D + (b0-d*op.L)*op.D
					bag.ComputeRows(wg, b0, n, sendBuf, off)
				})
			}
			rep.PEEnd[s] = rp.Now()
			wgAll.Done()
		})
	}
	wgAll.Wait(p)
	rep.End = e.Now()
	return rep
}

// RunExchange executes only the communication half of the bulk-
// synchronous path: the RCCL-style All-to-All over the bucketized send
// buffer plus the shuffle kernels that interleave the received
// [src][T][L][D] blocks into the {L, k*T*D} output layout (the
// rearrangement the fused operator's point-to-point layout avoids).
// This is the eager-mode body of a graph AllToAll node.
func (op *EmbeddingAllToAll) RunExchange(p *sim.Proc) Report {
	return op.RunExchangeChunk(p, 0, 1)
}

// RunExchangeChunk executes chunk c of n of the communication half: the
// sub-block All-to-All moving only this chunk's table range of every
// destination block, plus the shuffle kernels for those tables. Chunk
// table ranges are disjoint and cover all tables, so the n chunked
// exchanges move and interleave exactly what the single full exchange
// would.
func (op *EmbeddingAllToAll) RunExchangeChunk(p *sim.Proc, c, n int) Report {
	pl := op.World.Platform()
	e := pl.E
	t0, t1 := op.chunkTables(c, n)
	if t1 <= t0 {
		return emptyChunkReport(e.Now(), op.k)
	}
	rep := Report{Start: e.Now(), PEEnd: make([]sim.Time, op.k)}
	cnt := op.T * op.L * op.D
	recv := op.recvBuf()

	comm := chunkComm(pl, op.PEs, c)
	comm.AllToAllSub(p, op.send, recv, cnt, t0*op.L*op.D, (t1-t0)*op.L*op.D, op.Config.Collective)

	wgAll := sim.NewWaitGroup(e)
	wgAll.Add(op.k)
	for s := 0; s < op.k; s++ {
		s := s
		pe := op.PEs[s]
		dev := pl.Device(pe)
		e.Go(fmt.Sprintf("base.shuffle/rank%d", s), func(rp *sim.Proc) {
			out := op.Out.On(pe)
			rbuf := recv.On(pe)
			tables := t1 - t0
			grid := op.k * tables
			dev.LaunchGrid(rp, "shuffle", grid, 0, func(wg *gpu.WG, l int) {
				src, t := l/tables, t0+l%tables
				blockBytes := float64(op.L*op.D) * 4
				wg.Read(blockBytes)
				wg.Write(blockBytes)
				if out.Functional() {
					for lr := 0; lr < op.L; lr++ {
						out.CopyWithin(op.dstOffset(src*op.T+t, lr), rbuf, src*cnt+t*op.L*op.D+lr*op.D, op.D)
					}
				}
			})
			rep.PEEnd[s] = rp.Now()
			wgAll.Done()
		})
	}
	wgAll.Wait(p)
	rep.End = e.Now()
	return rep
}

// RunBaseline executes the bulk-synchronous comparator: per-table
// embedding kernels writing a bucketized send buffer, an RCCL-style
// All-to-All, and a shuffle kernel that interleaves the received blocks
// into the {L, k*T*D} layout (§IV-A baseline).
func (op *EmbeddingAllToAll) RunBaseline(p *sim.Proc) Report {
	rep := op.RunPooling(p)
	ex := op.RunExchange(p)
	rep.End = ex.End
	copy(rep.PEEnd, ex.PEEnd)
	return rep
}
