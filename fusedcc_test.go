package fusedcc

import (
	"testing"
)

func TestScaleUpSystemRunsFusedGEMV(t *testing.T) {
	sys, err := NewScaleUp(4, Options{Functional: true})
	if err != nil {
		t.Fatal(err)
	}
	op, err := sys.NewGEMVAllReduce(GEMVSpec{M: 64, K: 16, TileM: 8, Seed: 1}, DefaultOperatorConfig())
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	sys.Run(func(p *Proc) { rep = op.RunFused(p) })
	if rep.Duration() <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	out := op.Out.On(0).Data()
	nonzero := false
	for _, v := range out {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("no output produced")
	}
}

func TestScaleOutSystemRunsFusedEmbedding(t *testing.T) {
	sys, err := NewScaleOut(2, Options{Functional: true})
	if err != nil {
		t.Fatal(err)
	}
	op, err := sys.NewEmbeddingAllToAll(EmbeddingSpec{TablesPerGPU: 2, Rows: 64, Dim: 8, GlobalBatch: 32, AvgPooling: 4, SliceRows: 4, Seed: 1}, DefaultOperatorConfig())
	if err != nil {
		t.Fatal(err)
	}
	var fusedRep Report
	sys.Run(func(p *Proc) { fusedRep = op.RunFused(p) })
	if fusedRep.RemotePuts == 0 {
		t.Error("no remote communication recorded")
	}

	// Baseline on a fresh identical system must match functionally.
	sys2, err := NewScaleOut(2, Options{Functional: true})
	if err != nil {
		t.Fatal(err)
	}
	op2, err := sys2.NewEmbeddingAllToAll(EmbeddingSpec{TablesPerGPU: 2, Rows: 64, Dim: 8, GlobalBatch: 32, AvgPooling: 4, SliceRows: 4, Seed: 1}, DefaultOperatorConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys2.Run(func(p *Proc) { op2.RunBaseline(p) })
	for pe := 0; pe < 2; pe++ {
		a, b := op.Out.On(pe).Data(), op2.Out.On(pe).Data()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("pe %d elem %d: fused %g != baseline %g", pe, i, a[i], b[i])
			}
		}
	}
}

func TestGEMMAllToAllViaFacade(t *testing.T) {
	sys, err := NewScaleUp(4, Options{Functional: true})
	if err != nil {
		t.Fatal(err)
	}
	op, err := sys.NewGEMMAllToAll(GEMMSpec{Tokens: 8, N: 12, K: 6, TileM: 4, TileN: 4, Seed: 1}, DefaultOperatorConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(func(p *Proc) { op.RunFused(p) })
	if op.Recv.On(2).Data()[0] == 0 {
		t.Error("combine output missing")
	}
}

func TestModelConstructors(t *testing.T) {
	sys, err := NewScaleUp(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DLRMConfig()
	cfg.TablesPerGPU = 2
	cfg.GlobalBatch = 64
	cfg.SliceRows = 8
	if _, err := sys.NewDLRM(cfg, DefaultOperatorConfig()); err != nil {
		t.Errorf("DLRM: %v", err)
	}
	tc := TransformerConfig()
	tc.Hidden, tc.FFN, tc.TileM = 256, 512, 32
	if _, err := sys.NewTransformerFFN(tc, DefaultOperatorConfig()); err != nil {
		t.Errorf("FFN: %v", err)
	}
	mc := MoEConfig()
	mc.TokensPerGPU, mc.ModelDim, mc.FFNDim, mc.TileM, mc.TileN = 16, 32, 64, 4, 8
	if _, err := sys.NewMoELayer(mc, DefaultOperatorConfig()); err != nil {
		t.Errorf("MoE: %v", err)
	}
}

func TestRunExperimentDispatch(t *testing.T) {
	for _, id := range []string{"table1", "table2"} {
		res, err := RunExperiment(id, true)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.ID == "" {
			t.Errorf("%s: empty result", id)
		}
	}
	if _, err := RunExperiment("fig99", true); err == nil {
		t.Error("unknown experiment must error")
	}
	if len(Experiments()) < 10 {
		t.Error("experiment catalogue incomplete")
	}
}

func TestGPUModelExposed(t *testing.T) {
	if GPUModel().CUs != 104 {
		t.Error("unexpected GPU model")
	}
}

func TestBackwardExchangeViaFacade(t *testing.T) {
	sys, err := NewScaleOut(2, Options{Functional: true})
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := sys.NewEmbeddingAllToAll(EmbeddingSpec{TablesPerGPU: 2, Rows: 64, Dim: 8, GlobalBatch: 32, AvgPooling: 4, SliceRows: 4, Seed: 1}, DefaultOperatorConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := NewEmbeddingGradExchange(fwd)
	// Seed gradients with the forward output shape.
	for pe := 0; pe < 2; pe++ {
		d := g.GradOut.On(pe).Data()
		for i := range d {
			d[i] = float32(pe*1000 + i)
		}
	}
	var rep Report
	sys.Run(func(p *Proc) { rep = g.RunFused(p) })
	if rep.RemotePuts == 0 {
		t.Error("backward exchange issued no puts")
	}
	if g.GradIn.On(0).Data()[0] == 0 && g.GradIn.On(1).Data()[0] == 0 {
		t.Error("no gradients delivered")
	}
}

func TestNewClusterHybridRunsFused(t *testing.T) {
	sys, err := NewCluster(2, 2, Options{Functional: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Platform.NDevices(); got != 4 {
		t.Fatalf("devices = %d, want 4", got)
	}
	op, err := sys.NewGEMVAllReduce(GEMVSpec{M: 32, K: 8, TileM: 4, Seed: 1}, DefaultOperatorConfig())
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	sys.Run(func(p *Proc) { rep = op.RunFused(p) })
	if rep.Duration() <= 0 {
		t.Fatal("no simulated time elapsed")
	}

	// Baseline on an identical cluster must agree bit-for-bit; its Auto
	// collective resolves to the hierarchical AllReduce.
	sys2, err := NewCluster(2, 2, Options{Functional: true})
	if err != nil {
		t.Fatal(err)
	}
	op2, err := sys2.NewGEMVAllReduce(GEMVSpec{M: 32, K: 8, TileM: 4, Seed: 1}, DefaultOperatorConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys2.Run(func(p *Proc) { op2.RunBaseline(p) })
	a, b := op.Out.On(0).Data(), op2.Out.On(0).Data()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("elem %d: fused %g != baseline %g", i, a[i], b[i])
		}
	}
}

func TestNewClusterRejectsBadShapes(t *testing.T) {
	if _, err := NewCluster(0, 4, Options{}); err == nil {
		t.Error("zero nodes must be an error")
	}
	if _, err := NewCluster(2, 0, Options{}); err == nil {
		t.Error("zero GPUs per node must be an error")
	}
	// A 2-node torus cannot be factored with both sides >= 2.
	if _, err := NewCluster(2, 1, Options{Topology: TopologyTorus2D}); err == nil {
		t.Error("unfactorable torus must be an error")
	}
	if sys, err := NewCluster(8, 2, Options{Topology: TopologyTorus2D}); err != nil || sys == nil {
		t.Errorf("8-node torus cluster should construct, got %v", err)
	}
}
