// Package fusedcc is a Go reproduction of "Optimizing Distributed ML
// Communication with Fused Computation-Collective Operations"
// (Punniyamurthy, Hamidouche, Beckmann — SC 2024).
//
// The library implements the paper's fused operators — embedding
// pooling + All-to-All, GEMV + AllReduce, and GEMM + All-to-All — on a
// deterministic discrete-event model of a multi-GPU, multi-node system
// (GPUs with occupancy-bounded workgroups and HBM contention, an
// Infinity-Fabric-like scale-up fabric, NIC/RDMA scale-out networking, a
// ROC_SHMEM-style GPU-initiated communication layer, RCCL-style baseline
// collectives, a Triton-like tile DSL, and an ASTRA-Sim-style scale-out
// training simulator). In functional mode the kernels compute real
// float32 results, so the fused operators are verified bit-for-bit
// against their bulk-synchronous baselines.
//
// This package is the public facade: it builds systems in the paper's
// two evaluation shapes plus general hybrid clusters (any Nodes x
// GPUsPerNode over a NIC mesh or 2D torus, with two-level hierarchical
// collectives) and re-exports the types needed to assemble and run
// operators, models, and the experiments.
package fusedcc

import (
	"fmt"

	"fusedcc/internal/collectives"
	"fusedcc/internal/core"
	"fusedcc/internal/dlrm"
	"fusedcc/internal/experiments"
	"fusedcc/internal/gpu"
	"fusedcc/internal/kernels"
	"fusedcc/internal/moe"
	"fusedcc/internal/platform"
	"fusedcc/internal/shmem"
	"fusedcc/internal/sim"
	"fusedcc/internal/torch"
	"fusedcc/internal/transformer"
	"fusedcc/internal/workload"
)

// Re-exported core types. Aliases keep the public API small while the
// implementation lives in focused internal packages.
type (
	// Proc is a simulated process; host programs receive one.
	Proc = sim.Proc
	// Duration is simulated time in nanoseconds.
	Duration = sim.Duration
	// Report captures one operator run (makespan, per-PE ends, traffic).
	Report = core.Report
	// OperatorConfig tunes the fused-kernel runtime (occupancy,
	// scheduling policy, bookkeeping costs).
	OperatorConfig = core.Config
	// Schedule selects communication-aware or oblivious WG ordering.
	Schedule = core.Schedule
	// EmbeddingAllToAll is the fused embedding + All-to-All operator.
	EmbeddingAllToAll = core.EmbeddingAllToAll
	// GEMVAllReduce is the fused GEMV + AllReduce operator.
	GEMVAllReduce = core.GEMVAllReduce
	// GEMMAllToAll is the fused GEMM + All-to-All operator.
	GEMMAllToAll = core.GEMMAllToAll
	// EmbeddingGradExchange is the backward counterpart of
	// EmbeddingAllToAll: gradients return to table owners with the
	// All-to-All overlapped against the scatter-add.
	EmbeddingGradExchange = core.EmbeddingGradExchange
	// DLRM is the recommendation-model case study.
	DLRM = dlrm.Model
	// ParallelFFN is the tensor-parallel transformer block case study.
	ParallelFFN = transformer.ParallelFFN
	// MoELayer is the mixture-of-experts case study.
	MoELayer = moe.Layer
	// ExperimentResult is a regenerated paper figure or table.
	ExperimentResult = experiments.Result
)

// Scheduling policies (paper §III-A, Fig 14).
const (
	CommAware = core.CommAware
	Oblivious = core.Oblivious
)

// Topology selects the inter-node network of a multi-node system.
type Topology = platform.Topology

// Inter-node topologies.
const (
	// TopologyPointToPoint is the full NIC mesh of Table I.
	TopologyPointToPoint = platform.TopoPointToPoint
	// TopologyTorus2D is the 2D torus of the Table II simulations.
	TopologyTorus2D = platform.TopoTorus2D
)

// CollectiveAlgo selects the baseline collective algorithm (see
// OperatorConfig.Collective).
type CollectiveAlgo = collectives.Algo

// Collective algorithms.
const (
	// CollectiveAuto picks flat or hierarchical from the node layout.
	CollectiveAuto = collectives.Auto
	// CollectiveFlat forces the single-level algorithms.
	CollectiveFlat = collectives.Flat
	// CollectiveRing forces the ring AllReduce.
	CollectiveRing = collectives.Ring
	// CollectiveHierarchical forces the two-level algorithms.
	CollectiveHierarchical = collectives.Hierarchical
)

// DefaultOperatorConfig returns the evaluation defaults (comm-aware
// scheduling, one WG slot of register pressure).
func DefaultOperatorConfig() OperatorConfig { return core.DefaultConfig() }

// System is an instantiated simulated cluster: engine, hardware, the
// GPU-initiated communication world, and the framework layer.
type System struct {
	Engine   *sim.Engine
	Platform *platform.Platform
	World    *shmem.World
	Torch    *torch.Framework
}

// Options configures system construction.
type Options struct {
	// Functional enables real float32 computation on device buffers
	// (for verification; timing-only runs are cheaper).
	Functional bool
	// Topology selects the inter-node network of multi-node systems
	// (default: point-to-point NIC mesh).
	Topology Topology
}

// NewScaleUp builds the paper's scale-up shape: one node with the given
// number of MI210-class GPUs fully connected at 80 GB/s (Table I).
func NewScaleUp(gpus int, opt Options) (*System, error) {
	return NewCluster(1, gpus, opt)
}

// NewScaleOut builds the paper's scale-out shape: nodes with one GPU
// each over a 20 GB/s network (Table I).
func NewScaleOut(nodes int, opt Options) (*System, error) {
	return NewCluster(nodes, 1, opt)
}

// NewCluster builds the general hybrid shape: nodes of fabric-connected
// MI210-class GPU groups (80 GB/s links) joined by a 20 GB/s-per-node
// inter-node network of the selected topology. An invalid shape is
// reported as an error, not a panic.
func NewCluster(nodes, gpusPerNode int, opt Options) (*System, error) {
	cfg := platform.Cluster(nodes, gpusPerNode)
	cfg.GPU.Functional = opt.Functional
	cfg.Topology = opt.Topology
	return newSystem(cfg)
}

func newSystem(cfg platform.Config) (*System, error) {
	e := sim.NewEngine()
	pl, err := platform.New(e, cfg)
	if err != nil {
		return nil, err
	}
	w := shmem.NewWorld(pl, shmem.DefaultConfig())
	return &System{Engine: e, Platform: pl, World: w, Torch: torch.New(w)}, nil
}

// PEs returns all GPU ids, the default communicator membership.
func (s *System) PEs() []int {
	pes := make([]int, s.Platform.NDevices())
	for i := range pes {
		pes[i] = i
	}
	return pes
}

// Run executes fn as the host program and drives the simulation to
// completion, returning the final virtual time.
func (s *System) Run(fn func(p *Proc)) Duration {
	s.Engine.Go("host", fn)
	return Duration(s.Engine.Run())
}

// NewDLRM builds the DLRM case study on this system.
func (s *System) NewDLRM(cfg dlrm.Config, opCfg OperatorConfig) (*DLRM, error) {
	return dlrm.New(s.World, s.PEs(), cfg, opCfg)
}

// NewTransformerFFN builds the tensor-parallel FFN case study.
func (s *System) NewTransformerFFN(cfg transformer.Config, opCfg OperatorConfig) (*ParallelFFN, error) {
	return transformer.New(s.World, s.PEs(), cfg, opCfg)
}

// NewMoELayer builds the mixture-of-experts case study.
func (s *System) NewMoELayer(cfg moe.Config, opCfg OperatorConfig) (*MoELayer, error) {
	return moe.New(s.World, s.PEs(), cfg, opCfg)
}

// DLRMConfig returns the default DLRM case-study configuration.
func DLRMConfig() dlrm.Config { return dlrm.DefaultConfig() }

// TransformerConfig returns the default FFN case-study configuration.
func TransformerConfig() transformer.Config { return transformer.DefaultConfig() }

// MoEConfig returns the default MoE case-study configuration.
func MoEConfig() moe.Config { return moe.DefaultConfig() }

// BuildGEMVAllReduce assembles the fused GEMV + AllReduce operator with
// synthetic seeded weights: every rank computes y_s = W_s.x_s of shape
// (m x k) and the operator produces the reduced y on every GPU.
func (s *System) BuildGEMVAllReduce(m, k, tileM int, seed int64, cfg OperatorConfig) (*GEMVAllReduce, error) {
	pes := s.PEs()
	gemvs := make([]*kernels.GEMV, len(pes))
	for i, pe := range pes {
		rng := workload.Rand(seed + int64(i))
		dev := s.Platform.Device(pe)
		g := &kernels.GEMV{M: m, K: k, TileM: tileM,
			W: dev.Alloc(m * k), X: dev.Alloc(k)}
		workload.FillRandom(rng, g.W)
		workload.FillRandom(rng, g.X)
		gemvs[i] = g
	}
	return core.NewGEMVAllReduce(s.World, pes, gemvs, cfg)
}

// BuildEmbeddingAllToAll assembles the fused embedding + All-to-All
// operator with synthetic seeded tables and lookups: tablesPerGPU tables
// of rows x dim per rank, pooled over globalBatch with avgPooling
// lookups per row.
func (s *System) BuildEmbeddingAllToAll(tablesPerGPU, rows, dim, globalBatch, avgPooling, sliceRows int, seed int64, cfg OperatorConfig) (*EmbeddingAllToAll, error) {
	pes := s.PEs()
	sets := make([]*kernels.EmbeddingSet, len(pes))
	for i, pe := range pes {
		rng := workload.Rand(seed + int64(i))
		dev := s.Platform.Device(pe)
		var bags []*kernels.EmbeddingBag
		for t := 0; t < tablesPerGPU; t++ {
			tab := kernels.NewEmbeddingTable(dev, rows, dim)
			workload.FillRandom(rng, tab.Weights)
			bag := &kernels.EmbeddingBag{Table: tab, Batch: globalBatch, AvgPooling: float64(avgPooling)}
			if dev.Config().Functional {
				csr := workload.Lookups(rng, globalBatch, rows, avgPooling)
				bag.Offsets, bag.Indices = csr.Offsets, csr.Indices
			}
			bags = append(bags, bag)
		}
		sets[i] = &kernels.EmbeddingSet{Bags: bags}
	}
	return core.NewEmbeddingAllToAll(s.World, pes, sets, globalBatch, sliceRows, cfg)
}

// BuildGEMMAllToAll assembles the fused GEMM + All-to-All operator with
// synthetic seeded operands: per-rank GEMM of (tokens*len(PEs)) x n x k.
func (s *System) BuildGEMMAllToAll(tokens, n, k, tileM, tileN int, seed int64, cfg OperatorConfig) (*GEMMAllToAll, error) {
	pes := s.PEs()
	m := tokens * len(pes)
	gemms := make([]*kernels.GEMM, len(pes))
	for i, pe := range pes {
		rng := workload.Rand(seed + int64(i))
		dev := s.Platform.Device(pe)
		g := &kernels.GEMM{M: m, N: n, K: k, TileM: tileM, TileN: tileN,
			A: dev.Alloc(m * k), B: dev.Alloc(k * n)}
		workload.FillRandom(rng, g.A)
		workload.FillRandom(rng, g.B)
		gemms[i] = g
	}
	return core.NewGEMMAllToAll(s.World, pes, gemms, cfg)
}

// NewEmbeddingGradExchange builds the backward gradient exchange for a
// forward embedding + All-to-All operator.
func NewEmbeddingGradExchange(fwd *EmbeddingAllToAll) *EmbeddingGradExchange {
	return core.NewEmbeddingGradExchange(fwd)
}

// RunExperiment regenerates one paper artifact by id: "fig8" .. "fig15",
// "table1", "table2", an ablation ("ablation:zerocopy",
// "ablation:slicesize", "ablation:occupancy", "ablation:kernelsplit"),
// or the beyond-the-paper hybrid-cluster sweep ("fig16" / "hybrid").
// quick shrinks sweeps for fast runs.
func RunExperiment(id string, quick bool) (*ExperimentResult, error) {
	opt := experiments.Options{Quick: quick}
	switch id {
	case "fig8":
		return experiments.Fig8(opt), nil
	case "fig9":
		return experiments.Fig9(opt), nil
	case "fig10":
		return experiments.Fig10(opt), nil
	case "fig11":
		return experiments.Fig11(opt), nil
	case "fig12":
		return experiments.Fig12(opt), nil
	case "fig13":
		return experiments.Fig13(opt), nil
	case "fig14":
		return experiments.Fig14(opt), nil
	case "fig15":
		return experiments.Fig15(opt), nil
	case "fig16", "hybrid":
		return experiments.Fig16(opt), nil
	case "table1":
		return experiments.TableI(), nil
	case "table2":
		return experiments.TableII(), nil
	case "ablation:zerocopy":
		return experiments.AblationZeroCopy(opt), nil
	case "ablation:slicesize":
		return experiments.AblationSliceSize(opt), nil
	case "ablation:occupancy":
		return experiments.AblationOccupancyPenalty(opt), nil
	case "ablation:kernelsplit":
		return experiments.AblationKernelSplit(opt), nil
	default:
		return nil, fmt.Errorf("fusedcc: unknown experiment %q", id)
	}
}

// Experiments lists the regenerable artifact ids in paper order.
func Experiments() []string {
	return []string{
		"table1", "table2",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"ablation:zerocopy", "ablation:slicesize", "ablation:occupancy", "ablation:kernelsplit",
	}
}

// RunHybridShape runs the hybrid-cluster comparison (hierarchical vs
// flat collectives, fused vs baseline operators) on one nodes x gpus
// shape — the engine behind fusionbench's -shape flag.
func RunHybridShape(nodes, gpusPerNode int, quick bool) (*ExperimentResult, error) {
	return experiments.HybridShape(nodes, gpusPerNode, experiments.Options{Quick: quick})
}

// GPUModel returns the device model used throughout (MI210-class).
func GPUModel() gpu.Config { return gpu.MI210() }
