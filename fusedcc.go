// Package fusedcc is a Go reproduction of "Optimizing Distributed ML
// Communication with Fused Computation-Collective Operations"
// (Punniyamurthy, Hamidouche, Beckmann — SC 2024).
//
// The library implements the paper's fused operators — embedding
// pooling + All-to-All, GEMV + AllReduce, and GEMM + All-to-All — on a
// deterministic discrete-event model of a multi-GPU, multi-node system
// (GPUs with occupancy-bounded workgroups and HBM contention, an
// Infinity-Fabric-like scale-up fabric, NIC/RDMA scale-out networking, a
// ROC_SHMEM-style GPU-initiated communication layer, RCCL-style baseline
// collectives, a Triton-like tile DSL, and an ASTRA-Sim-style scale-out
// training simulator). In functional mode the kernels compute real
// float32 results, so the fused operators are verified bit-for-bit
// against their bulk-synchronous baselines.
//
// Programs are written against a typed computation-graph IR
// (NewGraph): compute nodes (EmbeddingBag, GEMV, MatMul, per-rank
// kernels) and collective nodes (AllToAll, AllReduce, gradient
// exchange) over distributed tensors. Compile pattern-matches adjacent
// compute→collective pairs and rewrites them to the fused operators —
// the §III-D graph-transformation pass — and the executor runs the same
// graph eagerly (bulk-synchronous) or compiled (fused) with bit-exact
// results and a per-node timing/traffic report.
//
// This package is the public facade: it builds systems in the paper's
// two evaluation shapes plus general hybrid clusters (any Nodes x
// GPUsPerNode over a NIC mesh or 2D torus, with two-level hierarchical
// collectives) and re-exports the types needed to assemble and run
// graphs, operators, models, and the experiments.
package fusedcc

import (
	"fmt"

	"fusedcc/internal/collectives"
	"fusedcc/internal/core"
	"fusedcc/internal/dlrm"
	"fusedcc/internal/experiments"
	"fusedcc/internal/gpu"
	"fusedcc/internal/graph"
	"fusedcc/internal/moe"
	"fusedcc/internal/platform"
	"fusedcc/internal/shmem"
	"fusedcc/internal/sim"
	"fusedcc/internal/torch"
	"fusedcc/internal/transformer"
)

// Re-exported core types. Aliases keep the public API small while the
// implementation lives in focused internal packages.
type (
	// Proc is a simulated process; host programs receive one.
	Proc = sim.Proc
	// Duration is simulated time in nanoseconds.
	Duration = sim.Duration
	// Report captures one operator run (makespan, per-PE ends, traffic).
	Report = core.Report
	// OperatorConfig tunes the fused-kernel runtime (occupancy,
	// scheduling policy, bookkeeping costs).
	OperatorConfig = core.Config
	// Schedule selects communication-aware or oblivious WG ordering.
	Schedule = core.Schedule
	// EmbeddingAllToAll is the fused embedding + All-to-All operator.
	EmbeddingAllToAll = core.EmbeddingAllToAll
	// GEMVAllReduce is the fused GEMV + AllReduce operator.
	GEMVAllReduce = core.GEMVAllReduce
	// GEMMAllToAll is the fused GEMM + All-to-All operator.
	GEMMAllToAll = core.GEMMAllToAll
	// EmbeddingGradExchange is the backward counterpart of
	// EmbeddingAllToAll: gradients return to table owners with the
	// All-to-All overlapped against the scatter-add.
	EmbeddingGradExchange = core.EmbeddingGradExchange
	// DLRM is the recommendation-model case study. Config.Groups > 1
	// builds the multi-table, multi-interaction variant whose embedding
	// groups are independent graph branches.
	DLRM = dlrm.Model
	// DLRMModelConfig sizes the DLRM case study.
	DLRMModelConfig = dlrm.Config
	// ParallelFFN is the tensor-parallel transformer block case study.
	ParallelFFN = transformer.ParallelFFN
	// TransformerDecoder is the N-layer decoder stack built as a single
	// graph (attention stand-in + FFN pair per layer).
	TransformerDecoder = transformer.Decoder
	// DecoderConfig sizes a TransformerDecoder.
	DecoderConfig = transformer.DecoderConfig
	// MoELayer is the mixture-of-experts case study.
	MoELayer = moe.Layer
	// MoEStack is L chained MoE layers built as a single graph.
	MoEStack = moe.Stack
	// ExperimentResult is a regenerated paper figure or table.
	ExperimentResult = experiments.Result
)

// Re-exported graph IR types: the compile-and-fuse API every workload
// is written against.
type (
	// Graph is the typed computation graph.
	Graph = graph.Graph
	// GraphNode is one vertex of a Graph.
	GraphNode = graph.Node
	// GraphValue is an edge: one node's output, another's dependency.
	GraphValue = graph.Value
	// GraphExecutor runs graphs with dataflow scheduling (and, in
	// Pipelined mode or with Streams set, stream-aware scheduling over
	// per-GPU compute/comm queues).
	GraphExecutor = graph.Executor
	// GraphReport is a per-node timing/traffic execution report, with
	// per-stream occupancy in stream-aware runs.
	GraphReport = graph.Report
	// StreamReport is one GPU's stream-occupancy line of a GraphReport.
	StreamReport = graph.StreamReport
	// ExecMode selects eager, compiled, or pipelined execution.
	ExecMode = graph.Mode
	// CompileOptions tunes the fusion pass.
	CompileOptions = graph.CompileOptions
	// CompileReport lists the rewrites a fusion pass applied.
	CompileReport = graph.CompileReport
	// PartitionReport lists the pair splits a partition pass applied
	// (and, for wavefront passes, the rowwise splits and rewired joins).
	PartitionReport = graph.PartitionReport
	// PartitionSplit records one chunked pair of a partition pass.
	PartitionSplit = graph.Split
	// PartitionJoin records one layer-boundary join edge a wavefront
	// pass rewired to chunk granularity.
	PartitionJoin = graph.Join
	// SelectReport lists the per-pair mode decisions of a select pass
	// (Auto mode), with the predicted cost of every eligible form, plus
	// the wavefront chains it scheduled.
	SelectReport = graph.SelectReport
	// SelectDecision records one pair's cost-model decision.
	SelectDecision = graph.Decision
	// SelectWavefront records one chain the select pass scheduled as a
	// cross-pair wavefront.
	SelectWavefront = graph.WavefrontDecision
	// LoadContext describes observed serving load (queue depth, arrival
	// rate) for load-aware selection; the zero value prices for an idle
	// machine, reproducing Select's historical choices exactly.
	LoadContext = graph.LoadContext
	// DegradeContext carries observed degradation (compute and comm
	// slowdown factors) for fault-aware re-pricing; the zero value means
	// healthy and changes nothing.
	DegradeContext = graph.DegradeContext
	// FusionPattern identifies one compute→collective rewrite.
	FusionPattern = graph.Pattern
	// RowsSpec declares a rowwise per-rank compute node — the builder
	// contract that lets wavefront partitioning flow chunk-granular
	// dependencies through custom per-rank stages.
	RowsSpec = graph.RowsSpec
	// RangeKind names the dimension a chunk range tiles (rows, elems,
	// tables).
	RangeKind = core.RangeKind

	// GEMVSpec describes a GEMV + AllReduce workload (named fields
	// replacing the old positional constructor arguments).
	GEMVSpec = graph.GEMVSpec
	// EmbeddingSpec describes an embedding + All-to-All workload.
	EmbeddingSpec = graph.EmbeddingSpec
	// GEMMSpec describes a GEMM + All-to-All workload.
	GEMMSpec = graph.GEMMSpec
)

// Graph execution modes.
const (
	// Eager runs every node bulk-synchronous (compute kernels +
	// library collectives).
	Eager = graph.Eager
	// Compiled applies the fusion pass before running.
	Compiled = graph.Compiled
	// Pipelined applies the partition pass before running: fusible
	// pairs execute as K chunked sub-node chains whose collectives
	// overlap later chunks' compute on per-GPU streams — the
	// CoCoNet/GC3-style software-pipelining alternative to fusion.
	Pipelined = graph.Pipelined
	// Auto applies the cost-model select pass before running: each
	// fusible pair executes in whichever form the analytic device/link
	// cost model predicts fastest — fused, pipelined at a per-pair
	// saturation-clamped chunk depth, eager, or a cross-pair wavefront
	// chain — mixed within one graph.
	Auto = graph.Auto
	// Wavefront applies the cross-pair partition pass before running:
	// chunk ranges become first-class across layer boundaries, so a
	// deep stack whose joins provably align (e.g. the token-banded MoE
	// stack) executes as a wavefront — layer l+1's chunk c waits only
	// for layer l's chunk c — instead of draining the pipeline at every
	// layer boundary.
	Wavefront = graph.Wavefront
)

// Chunk-range kinds (see RowsSpec.Kind).
const (
	RangeRows   = core.RangeRows
	RangeElems  = core.RangeElems
	RangeTables = core.RangeTables
)

// DefaultChunks is the pipeline depth Pipelined mode uses when the
// executor's Chunks field is zero.
const DefaultChunks = graph.DefaultChunks

// Fusion patterns (see Compile and CompileOptions.Disable).
const (
	PatternGEMVAllReduce     = graph.PatternGEMVAllReduce
	PatternEmbeddingAllToAll = graph.PatternEmbeddingAllToAll
	PatternGEMMAllToAll      = graph.PatternGEMMAllToAll
	PatternGradExchange      = graph.PatternGradExchange
)

// Compile runs the fusion pass on a graph: adjacent compute→collective
// pairs matching an enabled pattern are rewritten to the fused
// operators; unmatched nodes still run as eager baselines.
func Compile(g *Graph, opt CompileOptions) (*Graph, *CompileReport) {
	return graph.Compile(g, opt)
}

// Partition runs the chunking pass on a graph: every fusible
// compute→collective pair is split into chunks chunked sub-node chains
// (clamped to each operator's granularity) whose interleaved schedule
// software-pipelines communication behind compute. Chunked execution is
// bit-exact with eager.
func Partition(g *Graph, chunks int) (*Graph, *PartitionReport) {
	return graph.Partition(g, chunks)
}

// PartitionWavefront runs the chunking pass with cross-pair rewiring:
// rowwise-declared nodes chunk alongside the pairs, and every layer-
// boundary join whose chunk ranges provably align becomes chunk-
// granular — the graph executes as a wavefront instead of draining at
// each boundary. Bit-exact with eager.
func PartitionWavefront(g *Graph, chunks int) (*Graph, *PartitionReport) {
	return graph.PartitionWavefront(g, chunks)
}

// Select runs the cost-model-driven rewrite behind Auto mode: each
// fusible compute→collective pair is priced in its execution forms
// (eager, fused, pipelined at candidate chunk depths up to the pair's
// WG-slot saturation point) with the analytic device/link cost model,
// and rewritten to the predicted-fastest form; alignable segment chains
// are additionally priced as cross-pair wavefronts with the wavefront
// pipeline recurrence and rewritten whole when the model predicts a
// win. The report lists every decision with the predicted costs. Mixed-
// mode execution is bit-exact with eager.
func Select(g *Graph) (*Graph, *SelectReport) {
	return graph.Select(g)
}

// SelectLoaded is Select re-priced for a machine under serving load:
// each form's latency is charged with the head-of-line delay it imposes
// on the queued work behind it (its bottleneck-stream demand times the
// observed queue depth), so under contention the model can prefer a
// form with worse idle latency but lower stream occupancy. A zero
// LoadContext is exactly Select.
func SelectLoaded(g *Graph, load LoadContext) (*Graph, *SelectReport) {
	return graph.SelectLoaded(g, load)
}

// Stack chains layers onto a graph: build(l, prev) appends layer l's
// nodes and returns its output value; prev is the zero GraphValue for
// layer 0. It returns the last layer's output — the layer-builder API
// multi-layer model stacks are assembled with.
func Stack(g *Graph, layers int, build func(layer int, prev GraphValue) (GraphValue, error)) (GraphValue, error) {
	return graph.Stack(g, layers, build)
}

// Scheduling policies (paper §III-A, Fig 14).
const (
	CommAware = core.CommAware
	Oblivious = core.Oblivious
)

// Topology selects the inter-node network of a multi-node system.
type Topology = platform.Topology

// Inter-node topologies.
const (
	// TopologyPointToPoint is the full NIC mesh of Table I.
	TopologyPointToPoint = platform.TopoPointToPoint
	// TopologyTorus2D is the 2D torus of the Table II simulations.
	TopologyTorus2D = platform.TopoTorus2D
)

// CollectiveAlgo selects the baseline collective algorithm (see
// OperatorConfig.Collective).
type CollectiveAlgo = collectives.Algo

// Collective algorithms.
const (
	// CollectiveAuto picks flat or hierarchical from the node layout.
	CollectiveAuto = collectives.Auto
	// CollectiveFlat forces the single-level algorithms.
	CollectiveFlat = collectives.Flat
	// CollectiveRing forces the ring AllReduce.
	CollectiveRing = collectives.Ring
	// CollectiveHierarchical forces the two-level algorithms.
	CollectiveHierarchical = collectives.Hierarchical
)

// DefaultOperatorConfig returns the evaluation defaults (comm-aware
// scheduling, one WG slot of register pressure).
func DefaultOperatorConfig() OperatorConfig { return core.DefaultConfig() }

// System is an instantiated simulated cluster: engine, hardware, the
// GPU-initiated communication world, and the framework layer.
type System struct {
	Engine   *sim.Engine
	Platform *platform.Platform
	World    *shmem.World
	Torch    *torch.Framework
}

// Options configures system construction.
type Options struct {
	// Functional enables real float32 computation on device buffers
	// (for verification; timing-only runs are cheaper).
	Functional bool
	// Topology selects the inter-node network of multi-node systems
	// (default: point-to-point NIC mesh).
	Topology Topology
}

// NewScaleUp builds the paper's scale-up shape: one node with the given
// number of MI210-class GPUs fully connected at 80 GB/s (Table I).
func NewScaleUp(gpus int, opt Options) (*System, error) {
	return NewCluster(1, gpus, opt)
}

// NewScaleOut builds the paper's scale-out shape: nodes with one GPU
// each over a 20 GB/s network (Table I).
func NewScaleOut(nodes int, opt Options) (*System, error) {
	return NewCluster(nodes, 1, opt)
}

// NewCluster builds the general hybrid shape: nodes of fabric-connected
// MI210-class GPU groups (80 GB/s links) joined by a 20 GB/s-per-node
// inter-node network of the selected topology. An invalid shape is
// reported as an error, not a panic.
func NewCluster(nodes, gpusPerNode int, opt Options) (*System, error) {
	cfg := platform.Cluster(nodes, gpusPerNode)
	cfg.GPU.Functional = opt.Functional
	cfg.Topology = opt.Topology
	return newSystem(cfg)
}

func newSystem(cfg platform.Config) (*System, error) {
	e := sim.NewEngine()
	pl, err := platform.New(e, cfg)
	if err != nil {
		return nil, err
	}
	w := shmem.NewWorld(pl, shmem.DefaultConfig())
	return &System{Engine: e, Platform: pl, World: w, Torch: torch.New(w)}, nil
}

// PEs returns all GPU ids, the default communicator membership.
func (s *System) PEs() []int {
	pes := make([]int, s.Platform.NDevices())
	for i := range pes {
		pes[i] = i
	}
	return pes
}

// Run executes fn as the host program and drives the simulation to
// completion, returning the final virtual time.
func (s *System) Run(fn func(p *Proc)) Duration {
	s.Engine.Go("host", fn)
	return Duration(s.Engine.Run())
}

// NewGraph returns an empty computation graph over all the system's
// GPUs. Build nodes with the graph's typed builders, then run it with
// RunGraph (or a GraphExecutor) in Eager or Compiled mode.
func (s *System) NewGraph(cfg OperatorConfig) *Graph {
	return graph.New(s.World, s.PEs(), cfg)
}

// RunGraph drives one execution of g in the given mode as the host
// program and returns the per-node report.
func (s *System) RunGraph(g *Graph, mode ExecMode) *GraphReport {
	var (
		x   GraphExecutor
		rep *GraphReport
	)
	s.Run(func(p *Proc) { rep = x.Execute(p, g, mode) })
	return rep
}

// NewDLRM builds the DLRM case study on this system.
func (s *System) NewDLRM(cfg dlrm.Config, opCfg OperatorConfig) (*DLRM, error) {
	return dlrm.New(s.World, s.PEs(), cfg, opCfg)
}

// NewTransformerFFN builds the tensor-parallel FFN case study.
func (s *System) NewTransformerFFN(cfg transformer.Config, opCfg OperatorConfig) (*ParallelFFN, error) {
	return transformer.New(s.World, s.PEs(), cfg, opCfg)
}

// NewMoELayer builds the mixture-of-experts case study.
func (s *System) NewMoELayer(cfg moe.Config, opCfg OperatorConfig) (*MoELayer, error) {
	return moe.New(s.World, s.PEs(), cfg, opCfg)
}

// NewTransformerDecoder builds an N-layer decoder stack as one graph,
// runnable in any execution mode (Eager, Compiled, Pipelined).
func (s *System) NewTransformerDecoder(cfg DecoderConfig, opCfg OperatorConfig) (*TransformerDecoder, error) {
	return transformer.NewDecoder(s.World, s.PEs(), cfg, opCfg)
}

// NewMoEStack builds a stack of layers MoE layers as one graph.
func (s *System) NewMoEStack(cfg moe.Config, layers int, opCfg OperatorConfig) (*MoEStack, error) {
	return moe.NewStack(s.World, s.PEs(), cfg, layers, opCfg)
}

// DecoderDefaultConfig returns the default decoder-stack configuration.
func DecoderDefaultConfig() DecoderConfig { return transformer.DefaultDecoderConfig() }

// DLRMConfig returns the default DLRM case-study configuration.
func DLRMConfig() dlrm.Config { return dlrm.DefaultConfig() }

// TransformerConfig returns the default FFN case-study configuration.
func TransformerConfig() transformer.Config { return transformer.DefaultConfig() }

// MoEConfig returns the default MoE case-study configuration.
func MoEConfig() moe.Config { return moe.DefaultConfig() }

// NewGEMVAllReduce assembles the GEMV + AllReduce pair operator from a
// spec, with synthetic seeded weights: every rank computes y_s = W_s.x_s
// and the operator produces the reduced y on every GPU.
func (s *System) NewGEMVAllReduce(spec GEMVSpec, cfg OperatorConfig) (*GEMVAllReduce, error) {
	gemvs, err := spec.Build(s.Platform, s.PEs())
	if err != nil {
		return nil, err
	}
	return core.NewGEMVAllReduce(s.World, s.PEs(), gemvs, cfg)
}

// NewEmbeddingAllToAll assembles the embedding + All-to-All pair
// operator from a spec, with synthetic seeded tables and lookups.
func (s *System) NewEmbeddingAllToAll(spec EmbeddingSpec, cfg OperatorConfig) (*EmbeddingAllToAll, error) {
	return spec.NewOperator(s.World, s.PEs(), cfg)
}

// NewGEMMAllToAll assembles the GEMM + All-to-All pair operator from a
// spec, with synthetic seeded operands: per-rank GEMM of
// (Tokens*len(PEs)) x N x K.
func (s *System) NewGEMMAllToAll(spec GEMMSpec, cfg OperatorConfig) (*GEMMAllToAll, error) {
	gemms, err := spec.Build(s.Platform, s.PEs())
	if err != nil {
		return nil, err
	}
	return core.NewGEMMAllToAll(s.World, s.PEs(), gemms, cfg)
}

// NewEmbeddingGradExchange builds the backward gradient exchange for a
// forward embedding + All-to-All operator.
func NewEmbeddingGradExchange(fwd *EmbeddingAllToAll) *EmbeddingGradExchange {
	return core.NewEmbeddingGradExchange(fwd)
}

// experiment is one registry row: a primary id, optional aliases, and
// the runner. RunExperiment and Experiments both derive from the table,
// so the dispatch and the catalogue cannot drift.
type experiment struct {
	id      string
	aliases []string
	run     func(experiments.Options) *ExperimentResult
}

// experimentTable lists the regenerable artifacts in paper order.
var experimentTable = []experiment{
	{id: "table1", run: func(experiments.Options) *ExperimentResult { return experiments.TableI() }},
	{id: "table2", run: func(experiments.Options) *ExperimentResult { return experiments.TableII() }},
	{id: "fig8", run: experiments.Fig8},
	{id: "fig9", run: experiments.Fig9},
	{id: "fig10", run: experiments.Fig10},
	{id: "fig11", run: experiments.Fig11},
	{id: "fig12", run: experiments.Fig12},
	{id: "fig13", run: experiments.Fig13},
	{id: "fig14", run: experiments.Fig14},
	{id: "fig15", run: experiments.Fig15},
	{id: "fig16", aliases: []string{"hybrid"}, run: experiments.Fig16},
	{id: "pipeline", run: experiments.Pipeline},
	{id: "auto", run: experiments.Auto},
	{id: "wavefront", run: experiments.Wavefront},
	{id: "serving", run: experiments.Serving},
	{id: "chaos", run: experiments.Chaos},
	{id: "astra", aliases: []string{"astra-replay"}, run: experiments.AstraReplay},
	{id: "ablation:zerocopy", run: experiments.AblationZeroCopy},
	{id: "ablation:slicesize", run: experiments.AblationSliceSize},
	{id: "ablation:occupancy", run: experiments.AblationOccupancyPenalty},
	{id: "ablation:kernelsplit", run: experiments.AblationKernelSplit},
}

// SweepOptions tunes how the Run* entry points execute sweeps.
type SweepOptions struct {
	// Quick shrinks sweeps for fast runs.
	Quick bool
	// Parallel is the sweep worker count: each sweep point runs its own
	// engine, so points execute concurrently on a bounded pool, merged
	// in deterministic point order — results are identical at any
	// count. One runs serial; values below one mean GOMAXPROCS.
	Parallel int
	// SimShards requests intra-simulation parallelism: each simulation
	// runs on up to this many conservative engine shards (0/1 =
	// serial). Simulated results are byte-identical at any shard count;
	// workloads without a positive cross-shard lookahead degrade to one
	// shard.
	SimShards int
}

func (o SweepOptions) internal() experiments.Options {
	return experiments.Options{Quick: o.Quick, Parallel: o.Parallel, SimShards: o.SimShards}
}

// EngineStats are process-wide simulation-engine runtime counters
// (events dispatched, event-pool reuse, direct sleep handoffs, heap
// high-water, conservative windows and barrier stalls), aggregated over
// every engine and shard the process ran.
type EngineStats = sim.Stats

// GlobalEngineStats snapshots the process-wide engine counters — the
// source of the BENCH_speed.json engine block.
func GlobalEngineStats() EngineStats { return sim.GlobalStats() }

// RunExperiment regenerates one paper artifact by id: "fig8" .. "fig15",
// "table1", "table2", an ablation ("ablation:zerocopy",
// "ablation:slicesize", "ablation:occupancy", "ablation:kernelsplit"),
// or the beyond-the-paper hybrid-cluster sweep ("fig16" / "hybrid").
// quick shrinks sweeps for fast runs. Sweep points run on the host
// default worker pool (GOMAXPROCS); use RunExperimentOpt to pin the
// worker count.
func RunExperiment(id string, quick bool) (*ExperimentResult, error) {
	return RunExperimentOpt(id, SweepOptions{Quick: quick})
}

// RunExperimentOpt is RunExperiment with explicit sweep options.
func RunExperimentOpt(id string, opt SweepOptions) (*ExperimentResult, error) {
	iopt := opt.internal()
	for _, ex := range experimentTable {
		if ex.id == id {
			return ex.run(iopt), nil
		}
		for _, a := range ex.aliases {
			if a == id {
				return ex.run(iopt), nil
			}
		}
	}
	return nil, fmt.Errorf("fusedcc: unknown experiment %q", id)
}

// Experiments lists the regenerable artifact ids in paper order,
// derived from the same registry RunExperiment dispatches on.
func Experiments() []string {
	ids := make([]string, len(experimentTable))
	for i, ex := range experimentTable {
		ids[i] = ex.id
	}
	return ids
}

// RunHybridShape runs the hybrid-cluster comparison (hierarchical vs
// flat collectives, fused vs baseline operators) on one nodes x gpus
// shape — the engine behind fusionbench's -shape flag.
func RunHybridShape(nodes, gpusPerNode int, quick bool) (*ExperimentResult, error) {
	return experiments.HybridShape(nodes, gpusPerNode, experiments.Options{Quick: quick})
}

// RunPipelineConfig runs one {shape, layers, chunks} configuration of
// the execution-mode comparison on all three case-study stacks — the
// engine behind fusionbench's -mode/-chunks/-layers flags. Rows pair
// the eager baseline against the requested mode; notes carry all three
// makespans and per-stream occupancy.
func RunPipelineConfig(nodes, gpusPerNode, layers, chunks int, mode ExecMode, quick bool) (*ExperimentResult, error) {
	return RunPipelineConfigOpt(nodes, gpusPerNode, layers, chunks, mode, SweepOptions{Quick: quick})
}

// RunPipelineConfigOpt is RunPipelineConfig with explicit sweep options.
func RunPipelineConfigOpt(nodes, gpusPerNode, layers, chunks int, mode ExecMode, opt SweepOptions) (*ExperimentResult, error) {
	return experiments.PipelinePoint(nodes, gpusPerNode, layers, chunks, mode, opt.internal())
}

// DurationOf converts seconds of simulated time to a Duration.
func DurationOf(seconds float64) Duration { return sim.DurationOf(seconds) }

// RunServingConfigOpt serves the three case-study stacks at one shape
// under an open-loop request stream — the engine behind fusionbench's
// -mode serve. The load is a seeded Poisson stream at qps (bounded by
// requests or by the simulated duration) or a trace file replayed
// verbatim. Each stack is served twice at the same offered load: on the
// idle-machine Auto plan and on the load-aware plan re-priced with the
// observed queue depth; rows pair the two plans' p99 latencies.
func RunServingConfigOpt(nodes, gpusPerNode, layers int, qps float64, requests int,
	duration Duration, tracePath string, seed int64, opt SweepOptions) (*ExperimentResult, error) {
	return experiments.ServingPoint(nodes, gpusPerNode, layers, qps, requests, duration, tracePath, seed, opt.internal())
}

// RunChaosConfigOpt serves the case-study stacks at one shape under an
// injected fault plan — the engine behind fusionbench's -mode chaos
// -faults. spec uses the chaos grammar ("slowlink@3,x8,start=1ms;
// droprank@?,start=4ms"; "?" targets draw from seed). Each stack is
// served once per arm on the same seeded arrival stream: the static
// fused and eager plans, offline Auto, and Auto with online
// re-selection from observed degradation; rows pair static-fused p99
// against auto+online p99.
func RunChaosConfigOpt(nodes, gpusPerNode, layers int, spec string, qps float64,
	requests int, seed int64, opt SweepOptions) (*ExperimentResult, error) {
	return experiments.ChaosPoint(nodes, gpusPerNode, layers, spec, qps, requests, seed, opt.internal())
}

// GPUModel returns the device model used throughout (MI210-class).
func GPUModel() gpu.Config { return gpu.MI210() }
