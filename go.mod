module fusedcc

go 1.24
