// Command dlrmsim runs the large scale-out DLRM training simulation of
// the paper's §IV-D (Fig 15): one forward + backward iteration across a
// 2D torus of GPU nodes, baseline versus fused embedding + All-to-All,
// in the style of ASTRA-Sim.
package main

import (
	"flag"
	"fmt"
	"os"

	"fusedcc/internal/astra"
)

func main() {
	var (
		torusW = flag.Int("torus-w", 16, "torus width")
		torusH = flag.Int("torus-h", 8, "torus height")
		tables = flag.Int("tables", 0, "embedding tables per node (0 = Table II default)")
		batch  = flag.Int("batch", 0, "local batch per node (0 = Table II default)")
		chunks = flag.Int("chunks", 0, "fused overlap chunks (0 = default)")
	)
	flag.Parse()

	sys := astra.DefaultSystem()
	sys.TorusW, sys.TorusH = *torusW, *torusH
	model := astra.DefaultModel()
	if *tables > 0 {
		model.TablesPerNode = *tables
	}
	if *batch > 0 {
		model.LocalBatch = *batch
	}
	if *chunks > 0 {
		model.Chunks = *chunks
	}

	s, err := astra.New(sys, model)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("system: %d-node %dx%d torus, %.0f Gb/s links, %v/hop\n",
		s.Nodes(), sys.TorusW, sys.TorusH, sys.LinkBandwidth*8/1e9, sys.HopLatency)
	fmt.Printf("model:  dim %d, %d tables/node, pooling %d, local batch %d, MLP %dx%d\n",
		model.EmbeddingDim, model.TablesPerNode, model.AvgPooling, model.LocalBatch, model.MLPLayers, model.MLPAvgSize)
	fmt.Printf("kernel times (profiled on the device model): emb fwd %v, emb bwd %v, mlp fwd %v, mlp bwd %v, interaction %v\n",
		s.Times.EmbeddingFwd, s.Times.EmbeddingBwd, s.Times.MLPBottomFwd+s.Times.MLPTopFwd, s.Times.MLPBwd, s.Times.Interaction)

	base := s.TrainIteration(false)
	fused := s.TrainIteration(true)
	fmt.Printf("\nbaseline iteration: %v\n", base.Total)
	fmt.Printf("fused iteration:    %v\n", fused.Total)
	fmt.Printf("reduction:          %.1f%% (paper Fig 15: ~21%%)\n",
		100*(1-float64(fused.Total)/float64(base.Total)))
}
