package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"fusedcc/internal/analysis"
)

// Vet-tool protocol: `go vet -vettool=detlint` invokes the tool once
// per compilation unit with the path to a JSON config describing the
// unit — its files, its import map, and the export data cmd/go already
// built for its dependencies. The shape mirrors
// golang.org/x/tools/go/analysis/unitchecker, minus facts (the
// determinism checks need none), so an empty facts file satisfies the
// protocol's output contract.

// vetConfig mirrors cmd/go's internal vet config JSON.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheckerMain(cfgPath string, jsonOut bool) {
	cfg, err := readVetConfig(cfgPath)
	if err != nil {
		fatalf("%v", err)
	}
	// Dependency passes only want the (empty) facts file.
	if cfg.VetxOnly {
		writeVetx(cfg)
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(cfg)
				return
			}
			fatalf("%v", err)
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := &vetImporter{
		cfg: cfg,
		gc: importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
			file, ok := cfg.PackageFile[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tcfg := &types.Config{
		Importer:    imp,
		Sizes:       types.SizesFor(compiler, runtime.GOARCH),
		FakeImportC: true,
		GoVersion:   cfg.GoVersion,
	}
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	pkg, err := tcfg.Check(importPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg)
			return
		}
		fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	diags, err := analysis.Check(fset, files, pkg, info, analysis.All())
	if err != nil {
		fatalf("%v", err)
	}
	writeVetx(cfg)

	if jsonOut {
		// cmd/go's vet -json shape: {package: {analyzer: [diagnostics]}}.
		byCheck := make(map[string][]map[string]string)
		for _, d := range diags {
			byCheck[d.Check] = append(byCheck[d.Check], map[string]string{
				"posn":    fset.Position(d.Pos).String(),
				"message": d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(map[string]any{cfg.ID: byCheck}); err != nil {
			fatalf("%v", err)
		}
		return
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Check, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func readVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	return cfg, nil
}

// writeVetx emits the facts file cmd/go expects from every unit, even
// though the determinism checks define no facts.
func writeVetx(cfg *vetConfig) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
		fatalf("writing facts: %v", err)
	}
}

// vetImporter maps source import strings through the unit's ImportMap
// before delegating to the gc export-data importer.
type vetImporter struct {
	cfg *vetConfig
	gc  types.Importer
}

func (vi *vetImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := vi.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return vi.gc.Import(path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "detlint: "+format+"\n", args...)
	os.Exit(1)
}
