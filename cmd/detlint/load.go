package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"fusedcc/internal/analysis"
)

// Standalone mode loads every requested package — in-package and
// external test files included, exactly the set `go test` would build —
// through `go list -e -test -deps -json` and typechecks the whole
// dependency closure from source. The module has a zero-dependency
// go.mod, so the closure is this repo plus the standard library; no
// export data or network is needed.

// goPkg is the subset of `go list -json` output the loader consumes.
type goPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Error      *struct{ Err string }
}

func standaloneMain(patterns []string, jsonOut bool) {
	diags, err := runStandalone(patterns, os.Stdout, jsonOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(1)
	}
	if diags > 0 {
		os.Exit(1)
	}
}

// runStandalone lints the packages matching patterns and returns how
// many findings it printed to w.
func runStandalone(patterns []string, w io.Writer, jsonOut bool) (int, error) {
	pkgs, err := listPackages(patterns)
	if err != nil {
		return 0, err
	}

	l := newSrcLoader()
	for _, p := range pkgs {
		l.table[p.ImportPath] = p
	}
	// When a test-augmented variant "P [P.test]" is listed, it carries
	// all of P's files plus its in-package tests; analyzing plain P too
	// would duplicate every finding in the shared files.
	augmented := make(map[string]bool)
	for _, p := range pkgs {
		if p.ForTest != "" && strings.Contains(p.ImportPath, " [") {
			augmented[p.ForTest] = true
		}
	}

	var all []jsonDiag
	for _, p := range pkgs {
		if p.Standard || p.DepOnly || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.ForTest == "" && augmented[p.ImportPath] {
			continue
		}
		if p.Error != nil {
			return 0, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		checked, err := l.check(p)
		if err != nil {
			return 0, fmt.Errorf("typechecking %s: %w", p.ImportPath, err)
		}
		diags, err := analysis.Check(l.fset, checked.files, checked.pkg, checked.info, analysis.All())
		if err != nil {
			return 0, fmt.Errorf("%s: %w", p.ImportPath, err)
		}
		for _, d := range diags {
			all = append(all, jsonDiag{
				Pos:     l.fset.Position(d.Pos).String(),
				Check:   d.Check,
				Message: d.Message,
			})
		}
	}

	// Variant and plain packages can still overlap through xtest files;
	// dedupe on position+message and keep a stable order.
	seen := make(map[jsonDiag]bool)
	uniq := all[:0]
	for _, d := range all {
		if !seen[d] {
			seen[d] = true
			uniq = append(uniq, d)
		}
	}
	sort.Slice(uniq, func(i, j int) bool {
		if uniq[i].Pos != uniq[j].Pos {
			return uniq[i].Pos < uniq[j].Pos
		}
		return uniq[i].Message < uniq[j].Message
	})

	if jsonOut {
		emitJSON(w, uniq)
	} else {
		for _, d := range uniq {
			fmt.Fprintf(w, "%s: [%s] %s\n", d.Pos, d.Check, d.Message)
		}
	}
	return len(uniq), nil
}

func listPackages(patterns []string) ([]*goPkg, error) {
	args := append([]string{"list", "-e", "-test", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	// Pure-Go file sets keep the source typechecker self-contained: no
	// cgo-generated declarations to miss.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*goPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(goPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// srcLoader typechecks go-list packages from source in dependency
// order, caching results by (possibly test-variant) import path.
type srcLoader struct {
	fset  *token.FileSet
	table map[string]*goPkg
	done  map[string]*checkedPkg
}

type checkedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newSrcLoader() *srcLoader {
	return &srcLoader{
		fset:  token.NewFileSet(),
		table: make(map[string]*goPkg),
		done:  make(map[string]*checkedPkg),
	}
}

func (l *srcLoader) check(p *goPkg) (*checkedPkg, error) {
	if c, ok := l.done[p.ImportPath]; ok {
		return c, nil
	}
	if len(p.CgoFiles) > 0 {
		return nil, fmt.Errorf("%s: unexpected cgo files with CGO_ENABLED=0", p.ImportPath)
	}
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := &types.Config{
		Importer:    &pkgImporter{l: l, from: p},
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		FakeImportC: true,
	}
	path := p.ImportPath
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	c := &checkedPkg{pkg: pkg, files: files, info: info}
	l.done[p.ImportPath] = c
	return c, nil
}

// pkgImporter resolves one package's imports: source import strings map
// to the go-list resolved paths (which carry " [P.test]" suffixes for
// test-augmented dependencies), then load recursively.
type pkgImporter struct {
	l    *srcLoader
	from *goPkg
}

func (pi *pkgImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	resolved := path
	for _, imp := range pi.from.Imports {
		base := imp
		if i := strings.Index(imp, " ["); i >= 0 {
			base = imp[:i]
		}
		if base == path {
			resolved = imp
			break
		}
	}
	dep, ok := pi.l.table[resolved]
	if !ok {
		return nil, fmt.Errorf("import %q not in the go list closure of %s", path, pi.from.ImportPath)
	}
	c, err := pi.l.check(dep)
	if err != nil {
		return nil, err
	}
	return c.pkg, nil
}
