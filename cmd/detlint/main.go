// Command detlint runs the determinism-linter suite (internal/analysis)
// over Go packages. It is the fourth leg of the repo's correctness
// stack, beside -race, the byte-identity diff gates, and the -compare
// perf gates: wallclock, rawrand, mapiter, postdelay, and rawgo catch
// nondeterminism at the line that introduces it.
//
// Two modes share the analyzers:
//
//	detlint ./...                      standalone: loads packages (tests
//	                                   included) via `go list` and
//	                                   typechecks them from source
//	go vet -vettool=$(pwd)/detlint ./...   vet protocol: cmd/go hands the
//	                                   tool one *.cfg unit at a time with
//	                                   prebuilt export data
//
// Exit status is nonzero when findings exist. Findings are suppressed
// by //detlint:allow <check> annotations (see internal/analysis).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"fusedcc/internal/analysis"
)

func main() {
	args := os.Args[1:]
	jsonOut := false
	var rest []string
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion()
			return
		case a == "-json" || a == "--json":
			jsonOut = true
		case a == "-h" || a == "-help" || a == "--help":
			usage()
			return
		case strings.HasPrefix(a, "-flags"):
			// cmd/go probes supported flags before forwarding user vet
			// flags; we expose only -json.
			fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit JSON diagnostics"}]`)
			return
		default:
			rest = append(rest, a)
		}
	}

	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		unitcheckerMain(rest[0], jsonOut)
		return
	}

	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	standaloneMain(rest, jsonOut)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: detlint [-json] [packages]

Runs the determinism checks over the named packages (default ./...),
test files included. Checks:

`)
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nSuppress a finding with //detlint:allow <check> at line, decl, or file scope.\nAlso usable as a vet tool: go vet -vettool=/path/to/detlint ./...\n")
}

// printVersion implements the `-V=full` probe cmd/go uses to fingerprint
// vet tools for build caching: the tool's content hash is its version.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	exe, err := os.Executable()
	if err != nil {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
}

// jsonDiag is the emitted shape of one finding.
type jsonDiag struct {
	Pos     string `json:"posn"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func emitJSON(w io.Writer, diags []jsonDiag) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	if diags == nil {
		diags = []jsonDiag{}
	}
	if err := enc.Encode(diags); err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(1)
	}
}
