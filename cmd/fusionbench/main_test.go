package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fusedcc"
	"fusedcc/internal/experiments"
	"fusedcc/internal/sim"
)

// benchResults builds a tiny result set with one row per duration.
func benchResults(fused ...sim.Duration) []*fusedcc.ExperimentResult {
	res := &experiments.Result{ID: "Pipeline", Title: "test sweep"}
	for i, d := range fused {
		res.Rows = append(res.Rows, experiments.Row{
			Label:    "row" + string(rune('A'+i)),
			Baseline: 2 * d,
			Fused:    d,
		})
	}
	return []*fusedcc.ExperimentResult{res}
}

func TestBaselineRoundTripSchema2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	header := jsonHeader{Schema: 2, Quick: true, Parallel: 8, Host: jsonHost{WallMs: 1234, GoMaxProcs: 8, NumCPU: 8}}
	if err := writeJSON(path, header, benchResults(100, 200)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	base, err := parseBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 1 || len(base[0].Rows) != 2 || base[0].Rows[0].FusedNs != 100 {
		t.Fatalf("round trip mangled results: %+v", base)
	}
	// The header must carry the host facts verbatim.
	var file jsonFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if file.Header != header {
		t.Fatalf("header = %+v, want %+v", file.Header, header)
	}
}

func TestParseBaselineLegacyArray(t *testing.T) {
	legacy, err := json.Marshal(encodeResults(benchResults(100)))
	if err != nil {
		t.Fatal(err)
	}
	base, err := parseBaseline(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 1 || base[0].Rows[0].FusedNs != 100 {
		t.Fatalf("legacy parse mangled results: %+v", base)
	}
}

// TestCompareBaselineGate checks the perf gate on both schemas: equal
// results pass, a >tolerance slowdown fails, and a result set matching
// no baseline rows fails closed.
func TestCompareBaselineGate(t *testing.T) {
	dir := t.TempDir()
	v2 := filepath.Join(dir, "v2.json")
	if err := writeJSON(v2, jsonHeader{Schema: 2}, benchResults(100, 200)); err != nil {
		t.Fatal(err)
	}
	v1 := filepath.Join(dir, "v1.json")
	legacy, _ := json.Marshal(encodeResults(benchResults(100, 200)))
	if err := os.WriteFile(v1, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{v2, v1} {
		if err := compareBaseline(path, 0.10, benchResults(100, 200)); err != nil {
			t.Errorf("identical results failed the gate vs %s: %v", path, err)
		}
		err := compareBaseline(path, 0.10, benchResults(150, 200))
		if err == nil || !strings.Contains(err.Error(), "regression") {
			t.Errorf("50%% slowdown passed the gate vs %s (err %v)", path, err)
		}
	}
	// Fail closed when labels drift and nothing matches.
	drifted := benchResults(100)
	drifted[0].ID = "Renamed"
	if err := compareBaseline(v2, 0.10, drifted); err == nil {
		t.Error("gate passed with zero matched rows")
	}
}
