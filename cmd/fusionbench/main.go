// Command fusionbench regenerates the tables and figures of the paper's
// evaluation section (§IV) from the simulation, printing each as a text
// table with the paper's reference numbers alongside.
//
// Usage:
//
//	fusionbench -all            # every artifact, full sweeps
//	fusionbench -fig 12         # one figure (16 = hybrid-cluster sweep)
//	fusionbench -table 1        # one setup table
//	fusionbench -ablations      # the design-choice ablations
//	fusionbench -shape 4x4      # hybrid comparison on one nodes x gpus shape
//	fusionbench -pipeline       # eager vs pipelined vs fused mode sweep
//	fusionbench -mode pipelined -chunks 4 -layers 4 -shape 2x4
//	                            # one execution-mode configuration
//	fusionbench -mode auto -json BENCH_auto.json
//	                            # cost-model mode-selection validation
//	                            # sweep (chosen modes, regret, mispredicts)
//	fusionbench -mode wavefront -json BENCH_wavefront.json
//	                            # inter-layer wavefront vs per-pair
//	                            # pipelining sweep (joins, overlap, auto
//	                            # cross-check)
//	fusionbench -mode serve -json BENCH_serving.json
//	                            # open-loop serving sweep: idle-machine
//	                            # vs load-aware Auto plans under QPS
//	                            # load (p99, goodput, crossover points)
//	fusionbench -mode serve -qps 20000 -requests 64 -shape 1x8
//	                            # serve one shape at one offered rate
//	fusionbench -mode serve -trace arrivals.txt
//	                            # replay a recorded arrival trace
//	                            # ("<offset-seconds> [kind]" per line)
//	fusionbench -mode chaos -json BENCH_chaos.json
//	                            # fault-injection sweep: static plans vs
//	                            # degradation-aware online re-selection
//	                            # through slow-NIC / straggler /
//	                            # dropped-rank scenarios (p99, goodput,
//	                            # drops, re-shards)
//	fusionbench -mode chaos -faults "slowlink@3,x8;droprank@?,start=40ms"
//	                            # serve one shape under a specific plan
//	                            # ("?" targets draw from -seed)
//	fusionbench -json out.json  # also emit machine-readable makespans
//	fusionbench -pipeline -quick -compare BENCH_pipeline.json
//	                            # CI perf gate: fail if any makespan
//	                            # regresses past -tolerance vs baseline
//	fusionbench -quick ...      # shrunken sweeps (CI-sized)
//	fusionbench -parallel 8 ... # sweep points on 8 workers (default
//	                            # GOMAXPROCS; 1 = serial; simulated
//	                            # results are identical at any count)
//	fusionbench -cpuprofile cpu.out -memprofile mem.out ...
//	                            # host-side pprof profiles of the run
//	fusionbench -mode astra -simshards 8
//	                            # 128-node DLRM replay, serial vs
//	                            # conservative sharded engine: in-process
//	                            # identity gate plus both wall clocks
//	fusionbench -simshards 8 ...
//	                            # run simulations on 8 conservative
//	                            # engine shards (results identical;
//	                            # executor sweeps degrade to serial)
//	fusionbench -pipeline -quick -speedjson BENCH_speed.json
//	                            # also record host wall-clock speeds
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"fusedcc"
)

// parseShape parses "NxG" (e.g. "4x4") into nodes and GPUs per node,
// rejecting trailing garbage so "4x4x2" doesn't silently run 4x4.
func parseShape(s string) (nodes, gpus int, err error) {
	m := shapeRe.FindStringSubmatch(s)
	if m == nil {
		return 0, 0, fmt.Errorf("bad -shape %q: want NODESxGPUS, e.g. 4x4", s)
	}
	nodes, _ = strconv.Atoi(m[1])
	gpus, _ = strconv.Atoi(m[2])
	return nodes, gpus, nil
}

var shapeRe = regexp.MustCompile(`^(\d+)x(\d+)$`)

// parseMode maps the -mode flag to an execution mode.
func parseMode(s string) (fusedcc.ExecMode, error) {
	switch s {
	case "eager":
		return fusedcc.Eager, nil
	case "fused", "compiled":
		return fusedcc.Compiled, nil
	case "pipelined":
		return fusedcc.Pipelined, nil
	case "auto":
		return fusedcc.Auto, nil
	case "wavefront":
		return fusedcc.Wavefront, nil
	}
	return 0, fmt.Errorf("bad -mode %q: want eager, pipelined, fused, wavefront, or auto", s)
}

// jsonRow and jsonResult are the BENCH JSON schema: one entry per
// experiment with per-row makespans in nanoseconds, so CI can track
// the performance trajectory across commits.
type jsonRow struct {
	Label      string  `json:"label"`
	BaselineNs int64   `json:"baseline_ns"`
	FusedNs    int64   `json:"fused_ns"`
	Normalized float64 `json:"normalized"`
}

type jsonResult struct {
	ID    string    `json:"id"`
	Title string    `json:"title"`
	Rows  []jsonRow `json:"rows"`
	Notes []string  `json:"notes,omitempty"`
}

// jsonHost records host-side (wall-clock) facts of one run. Simulated
// times never depend on the host; this block exists so future commits
// have a host-speed trajectory alongside the virtual-time rows.
type jsonHost struct {
	WallMs     int64 `json:"wall_ms"`
	GoMaxProcs int   `json:"go_maxprocs"`
	NumCPU     int   `json:"num_cpu"`
}

// jsonHeader is the schema-2 BENCH JSON header. Everything outside
// header is a pure function of the simulation: serial and parallel
// runs produce byte-identical results arrays (CI diffs them with the
// header stripped).
type jsonHeader struct {
	Schema    int      `json:"schema"`
	Quick     bool     `json:"quick"`
	Parallel  int      `json:"parallel"`
	SimShards int      `json:"sim_shards,omitempty"`
	Host      jsonHost `json:"host"`
}

type jsonFile struct {
	Header  jsonHeader   `json:"header"`
	Results []jsonResult `json:"results"`
}

// encodeResults converts experiment results to the JSON row schema.
func encodeResults(results []*fusedcc.ExperimentResult) []jsonResult {
	out := make([]jsonResult, 0, len(results))
	for _, res := range results {
		jr := jsonResult{ID: res.ID, Title: res.Title, Notes: res.Notes}
		for _, r := range res.Rows {
			jr.Rows = append(jr.Rows, jsonRow{
				Label:      r.Label,
				BaselineNs: int64(r.Baseline),
				FusedNs:    int64(r.Fused),
				Normalized: r.Normalized(),
			})
		}
		out = append(out, jr)
	}
	return out
}

// writeJSON emits the collected results as a machine-readable schema-2
// file: a host header (wall-clock, worker count) plus the simulated
// results.
func writeJSON(path string, header jsonHeader, results []*fusedcc.ExperimentResult) error {
	data, err := json.MarshalIndent(jsonFile{Header: header, Results: encodeResults(results)}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// parseBaseline reads a baseline JSON in either schema: the schema-2
// object with a header, or the legacy bare results array.
func parseBaseline(data []byte) ([]jsonResult, error) {
	var file jsonFile
	if err := json.Unmarshal(data, &file); err == nil && file.Header.Schema >= 2 {
		return file.Results, nil
	}
	var legacy []jsonResult
	if err := json.Unmarshal(data, &legacy); err != nil {
		return nil, err
	}
	return legacy, nil
}

// compareBaseline is the CI perf-regression gate: it checks the
// collected results against a committed baseline JSON (the same schema
// writeJSON emits). A row whose measured makespan (fused_ns, the
// mode-under-test column) exceeds the baseline by more than tol
// regresses and fails the run. Rows are matched by (experiment id,
// label); rows absent from the baseline are new and ignored, so adding
// configurations never breaks the gate.
func compareBaseline(path string, tol float64, results []*fusedcc.ExperimentResult) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	base, err := parseBaseline(data)
	if err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	index := map[string]jsonRow{}
	for _, br := range base {
		for _, r := range br.Rows {
			index[br.ID+"|"+r.Label] = r
		}
	}
	var regressions []string
	matched := map[string]bool{}
	checked, fresh := 0, 0
	for _, res := range results {
		for _, r := range res.Rows {
			key := res.ID + "|" + r.Label
			b, ok := index[key]
			if !ok {
				fresh++
				continue
			}
			matched[key] = true
			checked++
			if float64(r.Fused) > float64(b.FusedNs)*(1+tol) {
				regressions = append(regressions, fmt.Sprintf(
					"  %s | %s: %d ns vs baseline %d ns (%+.1f%%)",
					res.ID, r.Label, int64(r.Fused), b.FusedNs,
					100*(float64(r.Fused)/float64(b.FusedNs)-1)))
			}
		}
	}
	missing := 0
	for key := range index {
		if !matched[key] {
			missing++
		}
	}
	fmt.Printf("compare vs %s: %d row(s) checked at %.0f%% tolerance, %d new, %d baseline row(s) not produced\n",
		path, checked, 100*tol, fresh, missing)
	// Fail closed: a run that matches no baseline rows means the sweep
	// labels or experiment ids drifted from the committed baseline —
	// the gate would otherwise silently stop gating.
	if checked == 0 {
		return fmt.Errorf("no result rows matched baseline %s: regenerate the baseline or fix the sweep labels", path)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("perf regression against %s:\n%s", path, strings.Join(regressions, "\n"))
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// speedEntry is one experiment's host wall-clock line of the speed
// file.
type speedEntry struct {
	ID     string `json:"id"`
	WallMs int64  `json:"wall_ms"`
}

// speedFile is the BENCH_speed.json schema (2): the host-speed
// trajectory of a sweep run — wall-clock plus process-wide engine
// runtime counters (simulated times live in the BENCH result files).
type speedFile struct {
	Schema      int                 `json:"schema"`
	Quick       bool                `json:"quick"`
	Parallel    int                 `json:"parallel"`
	SimShards   int                 `json:"sim_shards,omitempty"`
	GoMaxProcs  int                 `json:"go_maxprocs"`
	NumCPU      int                 `json:"num_cpu"`
	WallMs      int64               `json:"wall_ms"`
	Engine      fusedcc.EngineStats `json:"engine"`
	Experiments []speedEntry        `json:"experiments,omitempty"`
}

// main times each experiment's regeneration on the host clock for the
// speed JSON; simulated results never depend on these reads.
//
//detlint:allow wallclock -- host speed reporting, not simulated time
func main() {
	var (
		fig        = flag.Int("fig", 0, "regenerate figure N (8..16; 16 is the hybrid-cluster sweep)")
		table      = flag.Int("table", 0, "regenerate table N (1..2)")
		all        = flag.Bool("all", false, "regenerate every table and figure")
		ablations  = flag.Bool("ablations", false, "run the design-choice ablations")
		shape      = flag.String("shape", "", "nodes x GPUs shape (e.g. 4x4): hybrid comparison, or the shape of -mode")
		pipeline   = flag.Bool("pipeline", false, "run the eager vs pipelined vs fused execution-mode sweep")
		mode       = flag.String("mode", "", "run one execution-mode configuration: eager, pipelined, fused, auto, wavefront, or serve (auto/wavefront/serve without -shape run their full sweeps)")
		chunks     = flag.Int("chunks", fusedcc.DefaultChunks, "pipeline depth K for -mode pipelined")
		qps        = flag.Float64("qps", 0, "offered request rate for -mode serve (0 without -trace runs the full serving sweep)")
		faults     = flag.String("faults", "", "fault plan for -mode chaos: semicolon-separated \"kind@target[,x<factor>][,latency][,start=<dur>][,for=<dur>]\" with kind slowlink/straggler/droprank and target an id or ? (drawn from -seed); empty runs the full chaos sweep")
		trace      = flag.String("trace", "", "arrival trace file for -mode serve (one request per line: \"<offset-seconds> [kind]\")")
		requests   = flag.Int("requests", 64, "request count bound for -mode serve -qps")
		duration   = flag.Float64("duration", 0, "simulated horizon in seconds for -mode serve -qps (0: bound by -requests only)")
		seed       = flag.Int64("seed", 1, "arrival seed for -mode serve -qps")
		layers     = flag.Int("layers", 2, "stack depth L for -mode (decoder layers / MoE layers / DLRM groups)")
		jsonPath   = flag.String("json", "", "also write the results as machine-readable JSON (e.g. BENCH_pipeline.json)")
		compare    = flag.String("compare", "", "compare results against a committed baseline JSON and fail on perf regression")
		tolerance  = flag.Float64("tolerance", 0.10, "relative slowdown tolerated by -compare before failing")
		quick      = flag.Bool("quick", false, "shrink sweeps for a fast run")
		parallel   = flag.Int("parallel", 0, "sweep worker count: 0 = GOMAXPROCS, 1 = serial (results are identical at any count)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this file")
		speedPath  = flag.String("speedjson", "", "also write host wall-clock speeds as JSON (e.g. BENCH_speed.json)")
		simShards  = flag.Int("simshards", 0, "conservative engine shard request (0/1 = serial; workloads without a positive cross-shard lookahead degrade to serial; simulated results are identical at any count)")
	)
	flag.Parse()
	if *parallel < 1 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	sopt := fusedcc.SweepOptions{Quick: *quick, Parallel: *parallel, SimShards: *simShards}
	start := time.Now()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	var (
		results []*fusedcc.ExperimentResult
		speeds  []speedEntry
	)
	emit := func(res *fusedcc.ExperimentResult) {
		fmt.Println(res)
		results = append(results, res)
	}
	// runExp regenerates one registry experiment, timing it for the
	// speed file; wall points measured inside the experiment (e.g. the
	// astra replay's serial and sharded passes) ride along.
	runExp := func(id string) *fusedcc.ExperimentResult {
		t0 := time.Now()
		res, err := fusedcc.RunExperimentOpt(id, sopt)
		if err != nil {
			fail(err)
		}
		speeds = append(speeds, speedEntry{ID: id, WallMs: time.Since(t0).Milliseconds()})
		for _, wp := range res.Walls {
			speeds = append(speeds, speedEntry{ID: id + ":" + wp.Name, WallMs: wp.Ms})
		}
		return res
	}
	finish := func() {
		wall := time.Since(start).Milliseconds()
		if *jsonPath != "" {
			header := jsonHeader{
				Schema:    2,
				Quick:     *quick,
				Parallel:  *parallel,
				SimShards: *simShards,
				Host:      jsonHost{WallMs: wall, GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()},
			}
			if err := writeJSON(*jsonPath, header, results); err != nil {
				fail(err)
			}
			fmt.Printf("(wrote %s)\n", *jsonPath)
		}
		if *speedPath != "" {
			sf := speedFile{
				Schema: 2, Quick: *quick, Parallel: *parallel, SimShards: *simShards,
				GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
				WallMs: wall, Engine: fusedcc.GlobalEngineStats(),
				Experiments: speeds,
			}
			data, err := json.MarshalIndent(sf, "", "  ")
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*speedPath, append(data, '\n'), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("(wrote %s: %d ms wall at -parallel %d)\n", *speedPath, wall, *parallel)
		}
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err != nil {
				fail(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
			f.Close()
		}
		if *compare != "" {
			if err := compareBaseline(*compare, *tolerance, results); err != nil {
				fail(err)
			}
		}
	}

	switch {
	case *mode == "astra":
		// -mode astra runs the scale-out DLRM replay serially and on the
		// conservative sharded engine in one process: the experiment
		// gates that simulated timestamps are identical, and both
		// passes' wall-clock points land in -speedjson.
		if sopt.SimShards == 0 {
			sopt.SimShards = 8
		}
		emit(runExp("astra"))
		finish()
		return

	case *mode == "serve":
		if *shape == "" && *qps == 0 && *trace == "" {
			// Bare -mode serve runs the full serving sweep (every case
			// stack per shape, offered load stepped through multiples of
			// its saturation rate, idle-machine vs load-aware plans) —
			// the BENCH_serving.json producer. Add -qps or -trace (and
			// optionally -shape) to serve one configuration instead.
			emit(runExp("serving"))
			finish()
			return
		}
		nodes, gpus := 1, 8
		var err error
		if *shape != "" {
			if nodes, gpus, err = parseShape(*shape); err != nil {
				fail(err)
			}
		}
		res, err := fusedcc.RunServingConfigOpt(nodes, gpus, *layers, *qps, *requests,
			fusedcc.DurationOf(*duration), *trace, *seed, sopt)
		if err != nil {
			fail(err)
		}
		emit(res)
		finish()
		return

	case *mode == "chaos":
		if *faults == "" && *shape == "" {
			// Bare -mode chaos runs the full fault-injection sweep (every
			// scenario x serving arm on the scale-out shape) — the
			// BENCH_chaos.json producer. Add -faults (and optionally
			// -shape) to inject one plan instead.
			emit(runExp("chaos"))
			finish()
			return
		}
		nodes, gpus := 8, 1
		var err error
		if *shape != "" {
			if nodes, gpus, err = parseShape(*shape); err != nil {
				fail(err)
			}
		}
		res, err := fusedcc.RunChaosConfigOpt(nodes, gpus, *layers, *faults, *qps, *requests, *seed, sopt)
		if err != nil {
			fail(err)
		}
		emit(res)
		finish()
		return

	case *mode != "":
		m, err := parseMode(*mode)
		if err != nil {
			fail(err)
		}
		if m == fusedcc.Auto && *shape == "" {
			// Bare -mode auto runs the full mode-selection validation
			// sweep (per-config chosen modes, predicted vs measured
			// makespans, regret vs best-static) — the BENCH_auto.json
			// producer. Add -shape to run one configuration instead.
			emit(runExp("auto"))
			finish()
			return
		}
		if m == fusedcc.Wavefront && *shape == "" {
			// Bare -mode wavefront runs the full inter-layer wavefront
			// validation sweep — the BENCH_wavefront.json producer. Add
			// -shape to run one configuration instead.
			emit(runExp("wavefront"))
			finish()
			return
		}
		nodes, gpus := 1, 8
		if *shape != "" {
			if nodes, gpus, err = parseShape(*shape); err != nil {
				fail(err)
			}
		}
		res, err := fusedcc.RunPipelineConfigOpt(nodes, gpus, *layers, *chunks, m, sopt)
		if err != nil {
			fail(err)
		}
		emit(res)
		finish()
		return

	case *shape != "":
		nodes, gpus, err := parseShape(*shape)
		if err != nil {
			fail(err)
		}
		res, err := fusedcc.RunHybridShape(nodes, gpus, *quick)
		if err != nil {
			fail(err)
		}
		emit(res)
		finish()
		return
	}

	// The id lists derive from the facade's experiment registry, so the
	// CLI cannot drift from RunExperiment's dispatch table.
	var ablationIDs []string
	for _, id := range fusedcc.Experiments() {
		if strings.HasPrefix(id, "ablation:") {
			ablationIDs = append(ablationIDs, id)
		}
	}
	var ids []string
	switch {
	case *all:
		for _, id := range fusedcc.Experiments() {
			if *quick && strings.HasPrefix(id, "ablation:") {
				continue
			}
			ids = append(ids, id)
		}
	case *ablations:
		ids = ablationIDs
	case *pipeline:
		ids = []string{"pipeline"}
	case *fig != 0:
		ids = []string{fmt.Sprintf("fig%d", *fig)}
	case *table != 0:
		ids = []string{fmt.Sprintf("table%d", *table)}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		t0 := time.Now()
		emit(runExp(id))
		fmt.Printf("(regenerated in %v)\n\n", time.Since(t0).Round(time.Millisecond))
	}
	finish()
}
