// Command fusionbench regenerates the tables and figures of the paper's
// evaluation section (§IV) from the simulation, printing each as a text
// table with the paper's reference numbers alongside.
//
// Usage:
//
//	fusionbench -all            # every artifact, full sweeps
//	fusionbench -fig 12         # one figure
//	fusionbench -table 1        # one setup table
//	fusionbench -ablations      # the design-choice ablations
//	fusionbench -quick ...      # shrunken sweeps (CI-sized)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fusedcc"
)

func main() {
	var (
		fig       = flag.Int("fig", 0, "regenerate figure N (8..15)")
		table     = flag.Int("table", 0, "regenerate table N (1..2)")
		all       = flag.Bool("all", false, "regenerate every table and figure")
		ablations = flag.Bool("ablations", false, "run the design-choice ablations")
		quick     = flag.Bool("quick", false, "shrink sweeps for a fast run")
	)
	flag.Parse()

	var ids []string
	switch {
	case *all:
		ids = []string{"table1", "table2", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15"}
		if !*quick {
			ids = append(ids, "ablation:zerocopy", "ablation:slicesize", "ablation:occupancy", "ablation:kernelsplit")
		}
	case *ablations:
		ids = []string{"ablation:zerocopy", "ablation:slicesize", "ablation:occupancy", "ablation:kernelsplit"}
	case *fig != 0:
		ids = []string{fmt.Sprintf("fig%d", *fig)}
	case *table != 0:
		ids = []string{fmt.Sprintf("table%d", *table)}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		res, err := fusedcc.RunExperiment(id, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(res)
		fmt.Printf("(regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
