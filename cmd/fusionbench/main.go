// Command fusionbench regenerates the tables and figures of the paper's
// evaluation section (§IV) from the simulation, printing each as a text
// table with the paper's reference numbers alongside.
//
// Usage:
//
//	fusionbench -all            # every artifact, full sweeps
//	fusionbench -fig 12         # one figure (16 = hybrid-cluster sweep)
//	fusionbench -table 1        # one setup table
//	fusionbench -ablations      # the design-choice ablations
//	fusionbench -shape 4x4      # hybrid comparison on one nodes x gpus shape
//	fusionbench -quick ...      # shrunken sweeps (CI-sized)
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"

	"fusedcc"
)

// parseShape parses "NxG" (e.g. "4x4") into nodes and GPUs per node,
// rejecting trailing garbage so "4x4x2" doesn't silently run 4x4.
func parseShape(s string) (nodes, gpus int, err error) {
	m := shapeRe.FindStringSubmatch(s)
	if m == nil {
		return 0, 0, fmt.Errorf("bad -shape %q: want NODESxGPUS, e.g. 4x4", s)
	}
	nodes, _ = strconv.Atoi(m[1])
	gpus, _ = strconv.Atoi(m[2])
	return nodes, gpus, nil
}

var shapeRe = regexp.MustCompile(`^(\d+)x(\d+)$`)

func main() {
	var (
		fig       = flag.Int("fig", 0, "regenerate figure N (8..16; 16 is the hybrid-cluster sweep)")
		table     = flag.Int("table", 0, "regenerate table N (1..2)")
		all       = flag.Bool("all", false, "regenerate every table and figure")
		ablations = flag.Bool("ablations", false, "run the design-choice ablations")
		shape     = flag.String("shape", "", "run the hybrid comparison on one NODESxGPUS shape (e.g. 4x4)")
		quick     = flag.Bool("quick", false, "shrink sweeps for a fast run")
	)
	flag.Parse()

	if *shape != "" {
		nodes, gpus, err := parseShape(*shape)
		if err == nil {
			var res *fusedcc.ExperimentResult
			res, err = fusedcc.RunHybridShape(nodes, gpus, *quick)
			if err == nil {
				fmt.Println(res)
				return
			}
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The id lists derive from the facade's experiment registry, so the
	// CLI cannot drift from RunExperiment's dispatch table.
	var ablationIDs []string
	for _, id := range fusedcc.Experiments() {
		if strings.HasPrefix(id, "ablation:") {
			ablationIDs = append(ablationIDs, id)
		}
	}
	var ids []string
	switch {
	case *all:
		for _, id := range fusedcc.Experiments() {
			if *quick && strings.HasPrefix(id, "ablation:") {
				continue
			}
			ids = append(ids, id)
		}
	case *ablations:
		ids = ablationIDs
	case *fig != 0:
		ids = []string{fmt.Sprintf("fig%d", *fig)}
	case *table != 0:
		ids = []string{fmt.Sprintf("table%d", *table)}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		res, err := fusedcc.RunExperiment(id, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(res)
		fmt.Printf("(regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
