// Command wgprof reproduces the paper's Fig 11: the execution timeline
// of the fused embedding + All-to-All kernel's persistent workgroups,
// showing non-blocking puts issued while sibling workgroups compute,
// local-slice completions after the remote ones (communication-aware
// scheduling), and the distinct tail waits on sliceRdy flags.
package main

import (
	"flag"
	"fmt"

	"fusedcc/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "smaller workload")
		csv   = flag.Bool("csv", false, "also print the raw CSV timeline")
	)
	flag.Parse()

	res, tl := experiments.Fig11WithTimeline(experiments.Options{Quick: *quick})
	fmt.Println(res)
	if *csv {
		fmt.Println(tl.CSV())
	}
}
